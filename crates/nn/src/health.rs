//! Numeric-health layer: gradient clipping, non-finite detection, and
//! divergence policy for fine-tuning loops.
//!
//! GMorph fine-tunes thousands of *generated* candidate graphs, and merged
//! networks are well known to destabilize during joint retraining — a NaN
//! loss or an exploding gradient must be detected the step it happens,
//! reported as a structured [`NumericEvent`], and handled according to a
//! configurable [`DivergencePolicy`] instead of silently poisoning the
//! weights (which inheritance would then spread through the History
//! Database).
//!
//! Three layers of defence, cheapest first:
//!
//! 1. **Loss checks** ([`check_loss`]) — one `is_finite` per step, always on.
//! 2. **Gradient-norm checks** ([`grad_verdict`]) — the global norm is
//!    computed anyway when clipping is enabled; a NaN anywhere in any
//!    gradient makes the norm NaN, so the norm doubles as a whole-model
//!    non-finite probe. Clipping rescales by `max_norm / norm`, a positive
//!    scalar, so gradient *direction* is preserved exactly.
//! 3. **Slice scans** ([`observe_slice`]) — O(n) scans of activations or
//!    weights at low-frequency sites (layer outputs, eval boundaries).
//!    Report-only: they never panic, even in debug builds, because the
//!    search intentionally feeds graphs that may misbehave; containment is
//!    the supervisor's job, not `assert!`'s.
//!
//! Every violation emits an `eval.health` telemetry point and bumps the
//! `eval.health` counter, so a run's numeric history is visible in the
//! trace artifact and survives checkpoint/resume (counters are
//! checkpointed by the search driver).

use crate::Parameter;
use gmorph_tensor::error;
use gmorph_tensor::TensorError;
use std::fmt;

/// What a fine-tune loop does when a step diverges (non-finite or
/// norm above [`HealthConfig::divergence_threshold`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergencePolicy {
    /// Zero the gradients and skip this optimizer step; keep training.
    AbortStep,
    /// Rescale the gradient down to the clip/divergence bound and proceed
    /// (only possible while the norm is still finite).
    Rescale,
    /// Halt the candidate with a classified non-finite failure so the
    /// supervisor can retry or quarantine it.
    HaltCandidate,
}

impl DivergencePolicy {
    /// Stable config/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            DivergencePolicy::AbortStep => "abort_step",
            DivergencePolicy::Rescale => "rescale",
            DivergencePolicy::HaltCandidate => "halt_candidate",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "abort_step" => DivergencePolicy::AbortStep,
            "rescale" => DivergencePolicy::Rescale,
            "halt_candidate" => DivergencePolicy::HaltCandidate,
            _ => return None,
        })
    }
}

/// Numeric-health knobs threaded into fine-tuning loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Global-norm gradient clip threshold (`None` disables clipping).
    pub grad_clip: Option<f32>,
    /// Gradient norms above this are treated as divergence even when
    /// finite.
    pub divergence_threshold: f32,
    /// What to do when a step diverges.
    pub policy: DivergencePolicy,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            grad_clip: None,
            divergence_threshold: 1e6,
            policy: DivergencePolicy::HaltCandidate,
        }
    }
}

/// Which quantity a [`NumericEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericCheck {
    /// A scalar training loss.
    Loss,
    /// A gradient (scanned via its global norm or element-wise).
    Gradient,
    /// Model weights.
    Weight,
    /// A layer activation / output.
    Activation,
}

impl NumericCheck {
    /// Stable wire name used in telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            NumericCheck::Loss => "loss",
            NumericCheck::Gradient => "gradient",
            NumericCheck::Weight => "weight",
            NumericCheck::Activation => "activation",
        }
    }
}

impl fmt::Display for NumericCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Structured report of one numeric-health violation.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericEvent {
    /// Quantity that misbehaved.
    pub check: NumericCheck,
    /// Call site (operation name) that detected it.
    pub site: &'static str,
    /// NaN element count (1 for scalar checks).
    pub nan: usize,
    /// ±Inf element count.
    pub inf: usize,
    /// Total elements scanned (1 for scalar checks).
    pub total: usize,
    /// The offending scalar: the loss value or the gradient norm. NaN when
    /// the violation was element-wise.
    pub value: f64,
}

impl NumericEvent {
    /// Emits the event as an `eval.health` telemetry point + counter.
    pub fn emit(&self) {
        gmorph_telemetry::counter!("eval.health");
        gmorph_telemetry::point!(
            "eval.health",
            check = self.check.as_str(),
            site = self.site,
            nan = self.nan as u64,
            inf = self.inf as u64,
            total = self.total as u64,
            value = self.value,
        );
    }

    /// Lowers the event into a classified non-finite failure.
    pub fn to_error(&self) -> TensorError {
        error::non_finite(
            self.site,
            format!(
                "{}: {} NaN / {} Inf of {} elements (value {})",
                self.check, self.nan, self.inf, self.total, self.value
            ),
        )
    }
}

/// Scans a slice for non-finite elements. Returns `Some` (without
/// emitting) only when a violation is present.
pub fn scan_slice(check: NumericCheck, site: &'static str, data: &[f32]) -> Option<NumericEvent> {
    let mut nan = 0usize;
    let mut inf = 0usize;
    for &v in data {
        if v.is_nan() {
            nan += 1;
        } else if v.is_infinite() {
            inf += 1;
        }
    }
    (nan > 0 || inf > 0).then_some(NumericEvent {
        check,
        site,
        nan,
        inf,
        total: data.len(),
        value: f64::NAN,
    })
}

/// Report-only slice check for layer-level sites (attention outputs, loss
/// kernels): scans and emits a [`NumericEvent`] when telemetry is enabled
/// or in debug builds, and *never* panics — the search deliberately feeds
/// graphs that can misbehave, so containment belongs to the supervisor.
pub fn observe_slice(
    check: NumericCheck,
    site: &'static str,
    data: &[f32],
) -> Option<NumericEvent> {
    if !(cfg!(debug_assertions) || gmorph_telemetry::enabled()) {
        return None;
    }
    let event = scan_slice(check, site, data)?;
    event.emit();
    Some(event)
}

/// Report-only scalar-loss check (the release-mode replacement for
/// `debug_assert!(loss.is_finite())`).
pub fn observe_loss(site: &'static str, value: f32) -> Option<NumericEvent> {
    if value.is_finite() {
        return None;
    }
    let event = loss_event(site, value);
    event.emit();
    Some(event)
}

/// Enforcing scalar-loss check for training loops: emits and returns a
/// classified error when the loss is non-finite.
pub fn check_loss(site: &'static str, value: f32) -> gmorph_tensor::Result<()> {
    if value.is_finite() {
        return Ok(());
    }
    let event = loss_event(site, value);
    event.emit();
    Err(event.to_error())
}

fn loss_event(site: &'static str, value: f32) -> NumericEvent {
    NumericEvent {
        check: NumericCheck::Loss,
        site,
        nan: value.is_nan() as usize,
        inf: value.is_infinite() as usize,
        total: 1,
        value: value as f64,
    }
}

/// Sum of squared gradient elements, accumulated in `f64` in storage
/// order so the global norm is bit-identical across runs and thread
/// counts. Feed one call per parameter into a running sum.
pub fn grad_sq_sum(p: &Parameter) -> f64 {
    p.grad
        .data()
        .iter()
        .fold(0f64, |acc, &g| acc + (g as f64) * (g as f64))
}

/// Scale factor that clips `norm` to `max_norm`, or `None` when no
/// clipping is needed. The factor is a *positive* scalar, so the clipped
/// gradient is a positive multiple of the original — direction preserved.
pub fn clip_scale(norm: f32, max_norm: f32) -> Option<f32> {
    (norm.is_finite() && max_norm > 0.0 && norm > max_norm).then(|| max_norm / norm)
}

/// Multiplies a parameter's gradient in place.
pub fn scale_grad(p: &mut Parameter, scale: f32) {
    for g in p.grad.data_mut() {
        *g *= scale;
    }
}

/// What the training loop must do with this step's gradients.
#[derive(Debug, Clone, PartialEq)]
pub enum GradVerdict {
    /// Healthy: apply the optimizer step as-is.
    Ok,
    /// Multiply every gradient by this positive factor, then step.
    Clip(f32),
    /// Zero the gradients and skip the step.
    AbortStep,
    /// Halt the candidate with this violation.
    Halt(NumericEvent),
}

/// Classifies a global gradient norm against the health config.
///
/// Routine clipping (finite norm above `grad_clip`) bumps the
/// `health.grad_clip` counter but is not a violation; non-finite or
/// diverged norms emit an `eval.health` event and are resolved per the
/// configured [`DivergencePolicy`].
pub fn grad_verdict(cfg: &HealthConfig, site: &'static str, norm: f32) -> GradVerdict {
    if !norm.is_finite() {
        let event = NumericEvent {
            check: NumericCheck::Gradient,
            site,
            nan: norm.is_nan() as usize,
            inf: norm.is_infinite() as usize,
            total: 1,
            value: norm as f64,
        };
        event.emit();
        return match cfg.policy {
            DivergencePolicy::HaltCandidate => GradVerdict::Halt(event),
            // A non-finite norm cannot be rescaled back to health.
            DivergencePolicy::AbortStep | DivergencePolicy::Rescale => GradVerdict::AbortStep,
        };
    }
    if norm > cfg.divergence_threshold {
        let event = NumericEvent {
            check: NumericCheck::Gradient,
            site,
            nan: 0,
            inf: 0,
            total: 1,
            value: norm as f64,
        };
        event.emit();
        return match cfg.policy {
            DivergencePolicy::HaltCandidate => GradVerdict::Halt(event),
            DivergencePolicy::AbortStep => GradVerdict::AbortStep,
            DivergencePolicy::Rescale => {
                let bound = cfg.grad_clip.unwrap_or(cfg.divergence_threshold);
                match clip_scale(norm, bound) {
                    Some(s) => GradVerdict::Clip(s),
                    None => GradVerdict::AbortStep,
                }
            }
        };
    }
    if let Some(max) = cfg.grad_clip {
        if let Some(scale) = clip_scale(norm, max) {
            gmorph_telemetry::counter!("health.grad_clip");
            gmorph_telemetry::hist!("health.grad_norm", norm as f64);
            return GradVerdict::Clip(scale);
        }
    }
    GradVerdict::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_tensor::Tensor;

    fn cfg(clip: Option<f32>, policy: DivergencePolicy) -> HealthConfig {
        HealthConfig {
            grad_clip: clip,
            divergence_threshold: 1e6,
            policy,
        }
    }

    #[test]
    fn scan_counts_nan_and_inf_separately() {
        let data = [1.0, f32::NAN, f32::INFINITY, -2.0, f32::NEG_INFINITY];
        let e = scan_slice(NumericCheck::Activation, "t", &data).expect("violation");
        assert_eq!((e.nan, e.inf, e.total), (1, 2, 5));
        assert!(scan_slice(NumericCheck::Activation, "t", &[1.0, -2.0]).is_none());
    }

    #[test]
    fn check_loss_classifies_as_non_finite() {
        assert!(check_loss("t", 0.5).is_ok());
        let err = check_loss("t", f32::NAN).unwrap_err();
        assert_eq!(
            gmorph_tensor::error::classify(&err),
            gmorph_tensor::error::FailureKind::NonFinite
        );
    }

    #[test]
    fn clip_scale_is_positive_and_exact() {
        assert_eq!(clip_scale(2.0, 4.0), None, "under the bound");
        let s = clip_scale(10.0, 4.0).unwrap();
        assert!(s > 0.0 && (s - 0.4).abs() < 1e-7);
        assert_eq!(clip_scale(f32::NAN, 4.0), None);
    }

    #[test]
    fn grad_verdict_follows_policy() {
        // Healthy norm, no clip configured.
        assert_eq!(
            grad_verdict(&cfg(None, DivergencePolicy::HaltCandidate), "t", 1.0),
            GradVerdict::Ok
        );
        // Routine clipping.
        match grad_verdict(&cfg(Some(0.5), DivergencePolicy::HaltCandidate), "t", 2.0) {
            GradVerdict::Clip(s) => assert!((s - 0.25).abs() < 1e-7),
            v => panic!("expected clip, got {v:?}"),
        }
        // NaN norm: halt under HaltCandidate, abort-step otherwise.
        match grad_verdict(&cfg(None, DivergencePolicy::HaltCandidate), "t", f32::NAN) {
            GradVerdict::Halt(e) => assert_eq!(e.check, NumericCheck::Gradient),
            v => panic!("expected halt, got {v:?}"),
        }
        assert_eq!(
            grad_verdict(&cfg(None, DivergencePolicy::AbortStep), "t", f32::NAN),
            GradVerdict::AbortStep
        );
        assert_eq!(
            grad_verdict(&cfg(None, DivergencePolicy::Rescale), "t", f32::NAN),
            GradVerdict::AbortStep
        );
        // Finite divergence: rescale policy clips down to the bound.
        match grad_verdict(&cfg(Some(1.0), DivergencePolicy::Rescale), "t", 1e7) {
            GradVerdict::Clip(s) => assert!(s > 0.0 && s < 1.0),
            v => panic!("expected clip, got {v:?}"),
        }
    }

    #[test]
    fn scale_grad_preserves_direction() {
        let mut p = Parameter::new(Tensor::zeros(&[4]));
        p.grad = Tensor::from_vec(&[4], vec![3.0, -4.0, 0.0, 1.0]).unwrap();
        let before = p.grad.data().to_vec();
        let sq: f64 = grad_sq_sum(&p);
        let norm = sq.sqrt() as f32;
        let scale = clip_scale(norm, 1.0).unwrap();
        scale_grad(&mut p, scale);
        for (b, a) in before.iter().zip(p.grad.data()) {
            assert!((a - b * scale).abs() < 1e-7);
            assert_eq!(a.signum(), (b * scale).signum());
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            DivergencePolicy::AbortStep,
            DivergencePolicy::Rescale,
            DivergencePolicy::HaltCandidate,
        ] {
            assert_eq!(DivergencePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(DivergencePolicy::parse("yolo"), None);
    }
}
