//! Loss functions returning `(value, gradient-wrt-prediction)` pairs.
//!
//! The distillation objective of §5.2 — "the weighted sum of the ℓ1 loss
//! from all tasks, where each loss is the ℓ1 distance between the
//! multi-task model's output features and the single-task model's output
//! features" — is [`weighted_l1_multi`].
//!
//! Every loss reports a non-finite result through the numeric-health layer
//! ([`crate::health::observe_loss`]) — a structured `eval.health` event in
//! release builds, never a panic — so a divergent candidate is visible to
//! the search supervisor the step it diverges.

use crate::health;
use gmorph_tensor::ops::softmax_rows;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Mean absolute error and its gradient.
pub fn l1_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if pred.dims() != target.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "l1_loss",
            lhs: pred.shape().to_string(),
            rhs: target.shape().to_string(),
        });
    }
    let n = pred.numel().max(1) as f32;
    let mut grad = Tensor::zeros(pred.dims());
    let mut loss = 0.0f32;
    for i in 0..pred.numel() {
        let d = pred.data()[i] - target.data()[i];
        loss += d.abs();
        // Subgradient 0 at d == 0 (f32::signum maps +0.0 to 1.0, which
        // would inject spurious gradient into already-matched outputs).
        grad.data_mut()[i] = if d > 0.0 {
            1.0
        } else if d < 0.0 {
            -1.0
        } else {
            0.0
        } / n;
    }
    health::observe_loss("l1_loss", loss / n);
    Ok((loss / n, grad))
}

/// Mean squared error and its gradient.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if pred.dims() != target.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "mse_loss",
            lhs: pred.shape().to_string(),
            rhs: target.shape().to_string(),
        });
    }
    let n = pred.numel().max(1) as f32;
    let mut grad = Tensor::zeros(pred.dims());
    let mut loss = 0.0f32;
    for i in 0..pred.numel() {
        let d = pred.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    health::observe_loss("mse_loss", loss / n);
    Ok((loss / n, grad))
}

/// Softmax cross-entropy over logits `[N, C]` with integer class labels.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "cross_entropy",
            expected: 2,
            actual: logits.shape().rank(),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "cross_entropy",
            lhs: format!("[{n} labels]"),
            rhs: format!("[{} labels]", labels.len()),
        });
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &y) in labels.iter().enumerate() {
        if y >= c {
            return Err(TensorError::OutOfBounds {
                op: "cross_entropy",
                index: y,
                bound: c,
            });
        }
        loss -= probs.data()[i * c + y].max(1e-12).ln();
        grad.data_mut()[i * c + y] -= 1.0;
    }
    let inv = 1.0 / n as f32;
    grad.scale_in_place(inv);
    health::observe_loss("cross_entropy", loss * inv);
    Ok((loss * inv, grad))
}

/// Binary cross-entropy with logits over `[N, C]` multi-label targets in
/// `{0, 1}`; used for the multi-label object task scored with mAP.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> Result<(f32, Tensor)> {
    if logits.dims() != targets.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "bce_with_logits",
            lhs: logits.shape().to_string(),
            rhs: targets.shape().to_string(),
        });
    }
    let n = logits.numel().max(1) as f32;
    let mut grad = Tensor::zeros(logits.dims());
    let mut loss = 0.0f32;
    for i in 0..logits.numel() {
        let x = logits.data()[i];
        let t = targets.data()[i];
        // Numerically stable: max(x,0) - x*t + log(1 + exp(-|x|)).
        loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        let p = 1.0 / (1.0 + (-x).exp());
        grad.data_mut()[i] = (p - t) / n;
    }
    health::observe_loss("bce_with_logits", loss / n);
    Ok((loss / n, grad))
}

/// The paper's distillation objective: weighted sum of per-task ℓ1
/// distances between student outputs and teacher outputs.
///
/// Returns the scalar loss and one gradient tensor per task, ready to feed
/// into each task branch's backward pass.
pub fn weighted_l1_multi(
    preds: &[Tensor],
    targets: &[Tensor],
    weights: &[f32],
) -> Result<(f32, Vec<Tensor>)> {
    if preds.len() != targets.len() || preds.len() != weights.len() {
        return Err(TensorError::InvalidArgument {
            op: "weighted_l1_multi",
            msg: format!(
                "arity mismatch: {} preds, {} targets, {} weights",
                preds.len(),
                targets.len(),
                weights.len()
            ),
        });
    }
    let mut total = 0.0f32;
    let mut grads = Vec::with_capacity(preds.len());
    for ((p, t), &w) in preds.iter().zip(targets.iter()).zip(weights.iter()) {
        let (l, mut g) = l1_loss(p, t)?;
        total += w * l;
        g.scale_in_place(w);
        grads.push(g);
    }
    health::observe_loss("weighted_l1_multi", total);
    Ok((total, grads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_tensor::rng::Rng;

    #[test]
    fn l1_basics() {
        let p = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let t = Tensor::from_vec(&[2], vec![0.0, 1.0]).unwrap();
        let (l, g) = l1_loss(&p, &t).unwrap();
        assert!((l - 1.5).abs() < 1e-6);
        assert_eq!(g.data(), &[0.5, -0.5]);
        assert!(l1_loss(&p, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn l1_zero_at_match() {
        let p = Tensor::ones(&[4]);
        let (l, _) = l1_loss(&p, &p).unwrap();
        assert_eq!(l, 0.0);
    }

    #[test]
    fn mse_gradcheck() {
        let mut rng = Rng::new(0);
        let p = Tensor::randn(&[6], 1.0, &mut rng);
        let t = Tensor::randn(&[6], 1.0, &mut rng);
        let (_, g) = mse_loss(&p, &t).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let num =
                (mse_loss(&pp, &t).unwrap().0 - mse_loss(&pm, &t).unwrap().0) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let mut rng = Rng::new(1);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = vec![0usize, 3, 2];
        let (_, g) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..12 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (cross_entropy(&lp, &labels).unwrap().0
                - cross_entropy(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3, "{num} vs {}", g.data()[i]);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_has_low_loss() {
        let logits =
            Tensor::from_vec(&[2, 2], vec![10.0, -10.0, -10.0, 10.0]).unwrap();
        let (l, _) = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(l < 1e-4);
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::zeros(&[1, 3]);
        assert!(cross_entropy(&logits, &[3]).is_err());
        assert!(cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn bce_gradcheck_and_stability() {
        let mut rng = Rng::new(2);
        let logits = Tensor::randn(&[2, 3], 2.0, &mut rng);
        let targets =
            Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        let (_, g) = bce_with_logits(&logits, &targets).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (bce_with_logits(&lp, &targets).unwrap().0
                - bce_with_logits(&lm, &targets).unwrap().0)
                / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
        // Extreme logits stay finite.
        let big = Tensor::from_vec(&[1, 2], vec![100.0, -100.0]).unwrap();
        let t = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]).unwrap();
        let (l, _) = bce_with_logits(&big, &t).unwrap();
        assert!(l.is_finite() && l < 1e-4);
    }

    #[test]
    fn weighted_l1_combines_tasks() {
        let p1 = Tensor::ones(&[2]);
        let t1 = Tensor::zeros(&[2]);
        let p2 = Tensor::full(&[2], 2.0);
        let t2 = Tensor::zeros(&[2]);
        let (l, grads) = weighted_l1_multi(
            &[p1, p2],
            &[t1, t2],
            &[1.0, 0.5],
        )
        .unwrap();
        assert!((l - (1.0 + 0.5 * 2.0)).abs() < 1e-6);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].data(), &[0.5, 0.5]);
        assert_eq!(grads[1].data(), &[0.25, 0.25]);
    }

    #[test]
    fn weighted_l1_rejects_arity_mismatch() {
        let p = vec![Tensor::ones(&[1])];
        let t = vec![Tensor::ones(&[1]), Tensor::ones(&[1])];
        assert!(weighted_l1_multi(&p, &t, &[1.0]).is_err());
    }
}
