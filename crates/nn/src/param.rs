//! Trainable parameters.

use gmorph_tensor::{Result, Tensor};

/// A trainable tensor with its gradient accumulator and Adam moments.
///
/// Keeping the optimizer moments inside the parameter keeps the optimizer
/// itself stateless, which matters for GMorph: candidate models are cloned
/// (weight inheritance from elite candidates, §2.2.2) and fine-tuned
/// independently; cloning a model must clone a complete training state.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// The parameter value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Tensor,
    /// Adam first-moment estimate.
    pub m: Tensor,
    /// Adam second-moment estimate.
    pub v: Tensor,
}

impl Parameter {
    /// Wraps a value tensor, allocating zeroed gradient and moment buffers.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        let m = Tensor::zeros(value.dims());
        let v = Tensor::zeros(value.dims());
        Parameter { value, grad, m, v }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }

    /// Accumulates `g` into the gradient.
    pub fn accumulate(&mut self, g: &Tensor) -> Result<()> {
        self.grad.add_assign(g)
    }

    /// Replaces the value, resetting gradient and moments.
    ///
    /// Used when a generated model inherits weights from a base candidate:
    /// optimizer state must not leak across candidates.
    pub fn load_value(&mut self, value: Tensor) {
        self.grad = Tensor::zeros(value.dims());
        self.m = Tensor::zeros(value.dims());
        self.v = Tensor::zeros(value.dims());
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_allocates_matching_buffers() {
        let p = Parameter::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.numel(), 6);
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.m.sum(), 0.0);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Parameter::new(Tensor::zeros(&[4]));
        p.accumulate(&Tensor::ones(&[4])).unwrap();
        p.accumulate(&Tensor::ones(&[4])).unwrap();
        assert_eq!(p.grad.sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.accumulate(&Tensor::ones(&[5])).is_err());
    }

    #[test]
    fn load_value_resets_state() {
        let mut p = Parameter::new(Tensor::zeros(&[2]));
        p.accumulate(&Tensor::ones(&[2])).unwrap();
        p.m = Tensor::ones(&[2]);
        p.load_value(Tensor::full(&[3], 7.0));
        assert_eq!(p.value.dims(), &[3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.m.sum(), 0.0);
    }
}
