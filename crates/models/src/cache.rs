//! Trained-weight cache.
//!
//! Teachers are expensive to train relative to the experiments that consume
//! them, so trained weights (plus the teacher's test score) are persisted
//! under a cache directory keyed by architecture fingerprint and seed. The
//! paper's artifact ships pre-trained `.model` files for the same reason.

use crate::model::{ModelSpec, SingleTaskModel};
use crate::train::{train_teacher, TrainConfig, TrainReport};
use gmorph_data::dataset::Split;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::serialize::{load_state_dict, save_state_dict};
use gmorph_tensor::{Result, Tensor};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// Returns the cache directory (`$GMORPH_CACHE_DIR` or
/// `target/gmorph-cache`).
pub fn cache_dir() -> PathBuf {
    std::env::var_os("GMORPH_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/gmorph-cache"))
}

/// Stable fingerprint of a model architecture.
pub fn fingerprint(spec: &ModelSpec) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", spec.blocks).hash(&mut h);
    spec.input_shape.hash(&mut h);
    spec.task.name.hash(&mut h);
    spec.task.classes.hash(&mut h);
    h.finish()
}

/// Cheap fingerprint of the training data so teachers trained on one
/// dataset (e.g. a smoke profile) are never served for another.
fn data_fingerprint(split: &Split) -> u64 {
    let mut h = DefaultHasher::new();
    split.train.len().hash(&mut h);
    split.test.len().hash(&mut h);
    // Checksum a few input values to distinguish same-sized datasets.
    let data = split.train.inputs.data();
    for &i in &[0usize, data.len() / 3, 2 * data.len() / 3] {
        if let Some(v) = data.get(i) {
            v.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

fn cache_path(spec: &ModelSpec, split: &Split, seed: u64) -> PathBuf {
    let sane: String = spec
        .name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    cache_dir().join(format!(
        "{sane}-{seed}-{:016x}-{:016x}.gmrh",
        fingerprint(spec),
        data_fingerprint(split)
    ))
}

/// Loads a cached teacher or trains and caches one.
///
/// Returns the model and its held-out test score.
pub fn load_or_train(
    spec: &ModelSpec,
    split: &Split,
    task_idx: usize,
    cfg: &TrainConfig,
    seed: u64,
) -> Result<(SingleTaskModel, f32)> {
    let path = cache_path(spec, split, seed);
    let mut rng = Rng::new(seed ^ fingerprint(spec));
    let mut model = spec.build(&mut rng)?;
    if let Ok(entries) = load_state_dict(&path) {
        if let Some((_, score)) = entries.iter().find(|(k, _)| k == "__score") {
            let weights: Vec<(String, Tensor)> = entries
                .iter()
                .filter(|(k, _)| k != "__score")
                .cloned()
                .collect();
            if model.load_state_dict(&weights).is_ok() {
                return Ok((model, score.data()[0]));
            }
        }
    }
    let report: TrainReport = train_teacher(&mut model, &split.train, &split.test, task_idx, cfg)?;
    let mut entries = model.state_dict();
    entries.push((
        "__score".to_string(),
        Tensor::from_vec(&[1], vec![report.final_score])?,
    ));
    // Caching is best-effort: a read-only filesystem must not fail training.
    let _ = save_state_dict(&path, &entries);
    Ok((model, report.final_score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{vgg, VggDepth, VisionScale};
    use gmorph_data::faces::{generate, FaceTask, FacesConfig};
    use gmorph_data::TaskSpec;

    #[test]
    fn fingerprint_distinguishes_architectures() {
        let t = TaskSpec::classification("x", 2);
        let a = vgg(VggDepth::Vgg11, VisionScale::mini(), &t).unwrap();
        let b = vgg(VggDepth::Vgg13, VisionScale::mini(), &t).unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a));
    }

    #[test]
    fn load_or_train_roundtrips_through_cache() {
        let dir = std::env::temp_dir().join(format!("gmorph-cache-test-{}", std::process::id()));
        std::env::set_var("GMORPH_CACHE_DIR", &dir);
        let mut rng = Rng::new(0);
        let cfg = FacesConfig {
            samples: 48,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender], &mut rng).unwrap();
        let split = ds.split(0.7, &mut rng).unwrap();
        let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), &ds.tasks[0]).unwrap();
        let tc = TrainConfig {
            epochs: 1,
            batch: 16,
            lr: 1e-3,
            seed: 0,
        };
        let (m1, s1) = load_or_train(&spec, &split, 0, &tc, 9).unwrap();
        // Second call must hit the cache and return identical weights.
        let (m2, s2) = load_or_train(&spec, &split, 0, &tc, 9).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(m1.state_dict(), m2.state_dict());
        std::env::remove_var("GMORPH_CACHE_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
