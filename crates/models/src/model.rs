//! Single-task model: an ordered sequence of computation blocks.

use gmorph_data::TaskSpec;
use gmorph_nn::{Block, BlockSpec, Mode, Parameter};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Weight-free description of a single-task DNN.
///
/// A model is a chain of [`BlockSpec`]s ending in a head, together with its
/// per-sample input shape and task binding. Specs validate at construction:
/// every block must accept its predecessor's output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name, e.g. `"AgeNet: VGG-13"`.
    pub name: String,
    /// The block chain.
    pub blocks: Vec<BlockSpec>,
    /// The task this model predicts.
    pub task: TaskSpec,
    /// Per-sample input shape (`[C, H, W]` for vision, `[T]` for text).
    pub input_shape: Vec<usize>,
}

impl ModelSpec {
    /// Validates the chain and constructs the spec.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BlockSpec>,
        task: TaskSpec,
        input_shape: Vec<usize>,
    ) -> Result<Self> {
        let spec = ModelSpec {
            name: name.into(),
            blocks,
            task,
            input_shape,
        };
        spec.shapes()?; // Validates the whole chain.
        let last = spec.blocks.last().ok_or(TensorError::InvalidArgument {
            op: "ModelSpec::new",
            msg: "empty model".to_string(),
        })?;
        match last {
            BlockSpec::Head { classes, .. } if *classes == spec.task.classes => Ok(spec),
            BlockSpec::Head { classes, .. } => Err(TensorError::InvalidArgument {
                op: "ModelSpec::new",
                msg: format!(
                    "head emits {classes} classes but task {} needs {}",
                    spec.task.name, spec.task.classes
                ),
            }),
            _ => Err(TensorError::InvalidArgument {
                op: "ModelSpec::new",
                msg: "model must end in a Head block".to_string(),
            }),
        }
    }

    /// Per-sample input shapes of every block (`blocks.len()` entries) plus
    /// the final output shape.
    pub fn shapes(&self) -> Result<Vec<Vec<usize>>> {
        let mut shapes = Vec::with_capacity(self.blocks.len() + 1);
        let mut cur = self.input_shape.clone();
        shapes.push(cur.clone());
        for b in &self.blocks {
            cur = b.out_shape(&cur)?;
            shapes.push(cur.clone());
        }
        Ok(shapes)
    }

    /// Total parameter count.
    pub fn capacity(&self) -> usize {
        self.blocks.iter().map(|b| b.capacity()).sum()
    }

    /// Total per-sample FLOPs.
    pub fn flops(&self) -> Result<u64> {
        let shapes = self.shapes()?;
        let mut total = 0u64;
        for (b, s) in self.blocks.iter().zip(shapes.iter()) {
            total += b.flops(s)?;
        }
        Ok(total)
    }

    /// Builds a trainable model with fresh weights.
    pub fn build(&self, rng: &mut Rng) -> Result<SingleTaskModel> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            blocks.push(b.build(rng)?);
        }
        Ok(SingleTaskModel {
            spec: self.clone(),
            blocks,
        })
    }
}

/// A trainable single-task DNN (a "well-trained DNN" once fitted).
#[derive(Debug, Clone)]
pub struct SingleTaskModel {
    /// The architecture descriptor.
    pub spec: ModelSpec,
    /// The trainable blocks, in execution order.
    pub blocks: Vec<Block>,
}

impl SingleTaskModel {
    /// Forward pass over a batched input.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut cur = x.clone();
        for b in &mut self.blocks {
            cur = b.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    /// Backward pass from output gradients; accumulates parameter grads.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let mut g = grad.clone();
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g)?;
        }
        Ok(g)
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for b in &mut self.blocks {
            b.visit_params(f);
        }
    }

    /// Total parameter count.
    pub fn capacity(&self) -> usize {
        self.blocks.iter().map(|b| b.capacity()).sum()
    }

    /// Drops all cached activations.
    pub fn clear_caches(&mut self) {
        for b in &mut self.blocks {
            b.clear_cache();
        }
    }

    /// Extracts persistent weights for caching, one entry per tensor.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            for (j, t) in b.state().into_iter().enumerate() {
                out.push((format!("block{i}.t{j}"), t));
            }
        }
        out
    }

    /// Loads weights produced by [`SingleTaskModel::state_dict`] from an
    /// architecturally identical model.
    pub fn load_state_dict(&mut self, entries: &[(String, Tensor)]) -> Result<()> {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let prefix = format!("block{i}.");
            let tensors: Vec<Tensor> = entries
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(_, t)| t.clone())
                .collect();
            b.load_state(&tensors)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;

    fn toy_spec() -> ModelSpec {
        ModelSpec::new(
            "toy",
            vec![
                BlockSpec::ConvRelu { c_in: 3, c_out: 4 },
                BlockSpec::MaxPool { k: 2 },
                BlockSpec::ConvRelu { c_in: 4, c_out: 8 },
                BlockSpec::Head {
                    features: 8,
                    classes: 3,
                },
            ],
            TaskSpec::classification("toy", 3),
            vec![3, 8, 8],
        )
        .unwrap()
    }

    #[test]
    fn spec_validates_chain() {
        let ok = toy_spec();
        assert_eq!(ok.shapes().unwrap().last().unwrap(), &vec![3]);
        // Broken chain rejected.
        let bad = ModelSpec::new(
            "bad",
            vec![
                BlockSpec::ConvRelu { c_in: 3, c_out: 4 },
                BlockSpec::ConvRelu { c_in: 5, c_out: 4 },
            ],
            TaskSpec::classification("x", 2),
            vec![3, 8, 8],
        );
        assert!(bad.is_err());
        // Missing head rejected.
        let headless = ModelSpec::new(
            "bad",
            vec![BlockSpec::ConvRelu { c_in: 3, c_out: 4 }],
            TaskSpec::classification("x", 2),
            vec![3, 8, 8],
        );
        assert!(headless.is_err());
        // Head class mismatch rejected.
        let wrong = ModelSpec::new(
            "bad",
            vec![
                BlockSpec::ConvRelu { c_in: 3, c_out: 4 },
                BlockSpec::Head {
                    features: 4,
                    classes: 5,
                },
            ],
            TaskSpec::classification("x", 2),
            vec![3, 8, 8],
        );
        assert!(wrong.is_err());
    }

    #[test]
    fn build_and_forward() {
        let mut rng = Rng::new(0);
        let mut m = toy_spec().build(&mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn capacity_consistency() {
        let mut rng = Rng::new(1);
        let spec = toy_spec();
        let m = spec.build(&mut rng).unwrap();
        assert_eq!(spec.capacity(), m.capacity());
        assert!(spec.capacity() > 0);
    }

    #[test]
    fn training_reduces_loss() {
        use gmorph_nn::loss::cross_entropy;
        use gmorph_nn::optim::Optim;
        let mut rng = Rng::new(2);
        let mut m = toy_spec().build(&mut rng).unwrap();
        let x = Tensor::randn(&[8, 3, 8, 8], 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let mut opt = Optim::adam(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let y = m.forward(&x, Mode::Train).unwrap();
            let (l, g) = cross_entropy(&y, &labels).unwrap();
            if step == 0 {
                first = l;
            }
            last = l;
            m.backward(&g).unwrap();
            opt.begin_step();
            m.visit_params(&mut |p| opt.update(p));
        }
        assert!(
            last < first * 0.7,
            "loss did not drop: {first} -> {last}"
        );
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = Rng::new(3);
        let spec = toy_spec();
        let mut a = spec.build(&mut rng).unwrap();
        let mut b = spec.build(&mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        b.load_state_dict(&a.state_dict()).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn flops_positive_and_stable() {
        let spec = toy_spec();
        assert!(spec.flops().unwrap() > 0);
        assert_eq!(spec.flops().unwrap(), spec.flops().unwrap());
    }
}
