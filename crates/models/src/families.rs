//! The four model families of Table 2, parameterized by scale.
//!
//! Topology (layer counts per stage, residual wiring, encoder depth) is
//! fixed per family member; widths and input resolution come from a scale
//! struct. "Mini" scales are trainable on one CPU core; "paper" scales
//! exist only for the analytic estimators.

use crate::model::ModelSpec;
use gmorph_data::TaskSpec;
use gmorph_nn::BlockSpec;
use gmorph_tensor::{Result, TensorError};

/// Scale parameters for convolutional models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisionScale {
    /// Input channels.
    pub in_channels: usize,
    /// Input image side length.
    pub img: usize,
    /// Base channel width (stage widths are multiples of this).
    pub base: usize,
}

impl VisionScale {
    /// Mini scale used for actual CPU training.
    pub fn mini() -> Self {
        VisionScale {
            in_channels: 3,
            img: 16,
            base: 4,
        }
    }

    /// Paper scale used only by the analytic estimators.
    pub fn paper() -> Self {
        VisionScale {
            in_channels: 3,
            img: 224,
            base: 64,
        }
    }
}

/// Scale parameters for transformer models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqScale {
    /// Model width.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder depth.
    pub depth: usize,
}

/// VGG family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggDepth {
    /// VGG-11-like: 1-1-2-2 convolutions per stage.
    Vgg11,
    /// VGG-13-like: 2-2-2-2.
    Vgg13,
    /// VGG-16-like: 2-2-3-3.
    Vgg16,
}

impl VggDepth {
    fn convs_per_stage(self) -> [usize; 4] {
        match self {
            VggDepth::Vgg11 => [1, 1, 2, 2],
            VggDepth::Vgg13 => [2, 2, 2, 2],
            VggDepth::Vgg16 => [2, 2, 3, 3],
        }
    }

    /// Family-member name.
    pub fn name(self) -> &'static str {
        match self {
            VggDepth::Vgg11 => "VGG-11",
            VggDepth::Vgg13 => "VGG-13",
            VggDepth::Vgg16 => "VGG-16",
        }
    }
}

/// ResNet family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResNetDepth {
    /// ResNet-18-like: 2-2-2-2 residual blocks per stage.
    ResNet18,
    /// ResNet-34-like: 3-4-6-3.
    ResNet34,
}

impl ResNetDepth {
    fn blocks_per_stage(self) -> [usize; 4] {
        match self {
            ResNetDepth::ResNet18 => [2, 2, 2, 2],
            ResNetDepth::ResNet34 => [3, 4, 6, 3],
        }
    }

    /// Family-member name.
    pub fn name(self) -> &'static str {
        match self {
            ResNetDepth::ResNet18 => "ResNet-18",
            ResNetDepth::ResNet34 => "ResNet-34",
        }
    }
}

/// Builds a VGG-family model spec.
///
/// Structure: four stages of `conv3x3+relu` blocks at widths
/// `[base, 2·base, 4·base, 4·base]`, each followed by 2×2 max pooling, then
/// a global-average-pool head — VGG's conv trunk with the fully-connected
/// stack replaced by a light head (standard for small inputs).
pub fn vgg(depth: VggDepth, scale: VisionScale, task: &TaskSpec) -> Result<ModelSpec> {
    if !scale.img.is_multiple_of(16) {
        return Err(TensorError::InvalidArgument {
            op: "families::vgg",
            msg: format!("image side {} must be divisible by 16", scale.img),
        });
    }
    let widths = [scale.base, 2 * scale.base, 4 * scale.base, 4 * scale.base];
    let mut blocks = Vec::new();
    let mut c_in = scale.in_channels;
    for (stage, &n_convs) in depth.convs_per_stage().iter().enumerate() {
        for _ in 0..n_convs {
            blocks.push(BlockSpec::ConvRelu {
                c_in,
                c_out: widths[stage],
            });
            c_in = widths[stage];
        }
        blocks.push(BlockSpec::MaxPool { k: 2 });
    }
    blocks.push(BlockSpec::Head {
        features: c_in,
        classes: task.classes,
    });
    ModelSpec::new(
        format!("{}: {}", task.name, depth.name()),
        blocks,
        task.clone(),
        vec![scale.in_channels, scale.img, scale.img],
    )
}

/// Builds a ResNet-family model spec.
///
/// Structure: a `conv+bn+relu` stem, four residual stages at widths
/// `[base, 2·base, 4·base, 8·base]` with strides `[1, 2, 2, 2]`, then a
/// global-average-pool head.
pub fn resnet(depth: ResNetDepth, scale: VisionScale, task: &TaskSpec) -> Result<ModelSpec> {
    let widths = [scale.base, 2 * scale.base, 4 * scale.base, 8 * scale.base];
    let strides = [1usize, 2, 2, 2];
    let mut blocks = vec![BlockSpec::ConvBnRelu {
        c_in: scale.in_channels,
        c_out: widths[0],
        kernel: 3,
        stride: 1,
    }];
    let mut c_in = widths[0];
    for (stage, &n_blocks) in depth.blocks_per_stage().iter().enumerate() {
        for b in 0..n_blocks {
            let stride = if b == 0 { strides[stage] } else { 1 };
            blocks.push(BlockSpec::Residual {
                c_in,
                c_out: widths[stage],
                stride,
            });
            c_in = widths[stage];
        }
    }
    blocks.push(BlockSpec::Head {
        features: c_in,
        classes: task.classes,
    });
    ModelSpec::new(
        format!("{}: {}", task.name, depth.name()),
        blocks,
        task.clone(),
        vec![scale.in_channels, scale.img, scale.img],
    )
}

/// Builds a ViT-family model spec: patch embedding, `depth` encoder
/// blocks, mean-pool head.
pub fn vit(
    name: &str,
    scale: SeqScale,
    in_channels: usize,
    img: usize,
    patch: usize,
    task: &TaskSpec,
) -> Result<ModelSpec> {
    let mut blocks = vec![BlockSpec::PatchEmbed {
        channels: in_channels,
        img,
        patch,
        d: scale.d,
    }];
    for _ in 0..scale.depth {
        blocks.push(BlockSpec::Transformer {
            d: scale.d,
            heads: scale.heads,
        });
    }
    blocks.push(BlockSpec::Head {
        features: scale.d,
        classes: task.classes,
    });
    ModelSpec::new(
        format!("{}: {}", task.name, name),
        blocks,
        task.clone(),
        vec![in_channels, img, img],
    )
}

/// Builds a BERT-family model spec: token embedding, `depth` encoder
/// blocks, mean-pool head.
pub fn bert(
    name: &str,
    scale: SeqScale,
    vocab: usize,
    seq_len: usize,
    task: &TaskSpec,
) -> Result<ModelSpec> {
    let mut blocks = vec![BlockSpec::TokenEmbed {
        vocab,
        d: scale.d,
        t_max: seq_len,
    }];
    for _ in 0..scale.depth {
        blocks.push(BlockSpec::Transformer {
            d: scale.d,
            heads: scale.heads,
        });
    }
    blocks.push(BlockSpec::Head {
        features: scale.d,
        classes: task.classes,
    });
    ModelSpec::new(
        format!("{}: {}", task.name, name),
        blocks,
        task.clone(),
        vec![seq_len],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_nn::Mode;
    use gmorph_tensor::rng::Rng;
    use gmorph_tensor::Tensor;

    #[test]
    fn vgg_block_counts() {
        let t = TaskSpec::classification("Age", 4);
        let v11 = vgg(VggDepth::Vgg11, VisionScale::mini(), &t).unwrap();
        let v13 = vgg(VggDepth::Vgg13, VisionScale::mini(), &t).unwrap();
        let v16 = vgg(VggDepth::Vgg16, VisionScale::mini(), &t).unwrap();
        // convs + 4 pools + head.
        assert_eq!(v11.blocks.len(), 6 + 4 + 1);
        assert_eq!(v13.blocks.len(), 8 + 4 + 1);
        assert_eq!(v16.blocks.len(), 10 + 4 + 1);
        assert!(v16.capacity() > v13.capacity());
        assert!(v13.capacity() > v11.capacity());
    }

    #[test]
    fn resnet_block_counts_and_flops_order() {
        let t = TaskSpec::multilabel("Object", 6);
        let r18 = resnet(ResNetDepth::ResNet18, VisionScale::mini(), &t).unwrap();
        let r34 = resnet(ResNetDepth::ResNet34, VisionScale::mini(), &t).unwrap();
        assert_eq!(r18.blocks.len(), 1 + 8 + 1);
        assert_eq!(r34.blocks.len(), 1 + 16 + 1);
        assert!(r34.flops().unwrap() > r18.flops().unwrap());
    }

    #[test]
    fn all_families_forward_at_mini_scale() {
        let mut rng = Rng::new(0);
        let t = TaskSpec::classification("x", 3);
        let specs = vec![
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t).unwrap(),
            resnet(ResNetDepth::ResNet18, VisionScale::mini(), &t).unwrap(),
            vit(
                "ViT-Base",
                SeqScale {
                    d: 16,
                    heads: 2,
                    depth: 2,
                },
                3,
                16,
                4,
                &t,
            )
            .unwrap(),
        ];
        for spec in specs {
            let mut m = spec.build(&mut rng).unwrap();
            let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
            let y = m.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.dims(), &[2, 3], "{}", spec.name);
        }
        // BERT takes token ids.
        let bt = bert(
            "BERT-Base",
            SeqScale {
                d: 16,
                heads: 2,
                depth: 2,
            },
            32,
            12,
            &t,
        )
        .unwrap();
        let mut m = bt.build(&mut rng).unwrap();
        let ids = Tensor::from_vec(&[2, 12], vec![1.0; 24]).unwrap();
        let y = m.forward(&ids, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn paper_scale_has_larger_flops() {
        let t = TaskSpec::classification("x", 4);
        let mini = vgg(VggDepth::Vgg16, VisionScale::mini(), &t).unwrap();
        let paper = vgg(VggDepth::Vgg16, VisionScale::paper(), &t).unwrap();
        // Same topology, vastly larger cost.
        assert_eq!(mini.blocks.len(), paper.blocks.len());
        assert!(paper.flops().unwrap() > mini.flops().unwrap() * 1000);
    }

    #[test]
    fn vgg_rejects_undivisible_images() {
        let t = TaskSpec::classification("x", 2);
        let bad = VisionScale {
            in_channels: 3,
            img: 20,
            base: 4,
        };
        assert!(vgg(VggDepth::Vgg11, bad, &t).is_err());
    }
}
