//! Teacher training: fitting the task-specific "well-trained DNNs" that
//! GMorph takes as input.
//!
//! GMorph itself never trains with labels (fine-tuning is distillation,
//! §5.2); labels are used only here, to produce teachers, and in the
//! accuracy estimator, to *score* candidates.

use crate::model::SingleTaskModel;
use gmorph_data::metrics;
use gmorph_data::{Labels, LossKind, MultiTaskDataset};
use gmorph_nn::health;
use gmorph_nn::loss::{bce_with_logits, cross_entropy};
use gmorph_nn::optim::Optim;
use gmorph_nn::Mode;
use gmorph_tensor::checkpoint::{
    fnv1a, load_latest, ByteReader, ByteWriter, CheckpointManager, CheckpointOptions, Envelope,
    FNV_OFFSET,
};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Teacher-training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch: 32,
            lr: 3e-3,
            seed: 0,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Test score after each epoch.
    pub scores: Vec<f32>,
    /// Final test score.
    pub final_score: f32,
}

fn batch_loss(
    logits: &Tensor,
    labels: &Labels,
    loss: LossKind,
    indices: &[usize],
) -> Result<(f32, Tensor)> {
    match (loss, labels) {
        (LossKind::CrossEntropy, Labels::Classes(all)) => {
            let batch_labels: Vec<usize> = indices.iter().map(|&i| all[i]).collect();
            cross_entropy(logits, &batch_labels)
        }
        (LossKind::BceMultiLabel, Labels::MultiHot(all)) => {
            let targets = all.select_rows(indices)?;
            bce_with_logits(logits, &targets)
        }
        _ => Err(TensorError::InvalidArgument {
            op: "batch_loss",
            msg: "loss/label kind mismatch".to_string(),
        }),
    }
}

/// Payload kind of teacher-training snapshots.
pub const TEACHER_KIND: &str = "teacher";
/// Schema version of teacher-training snapshots.
pub const TEACHER_SCHEMA: u32 = 1;

/// Fingerprints the training configuration plus model/task identity: a
/// teacher snapshot must only resume the exact run it was written for.
fn teacher_fingerprint(model: &mut SingleTaskModel, task_name: &str, cfg: &TrainConfig) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(format!("{cfg:?}").as_bytes(), h);
    h = fnv1a(task_name.as_bytes(), h);
    model.visit_params(&mut |p| {
        h = fnv1a(&(p.value.numel() as u64).to_le_bytes(), h);
    });
    h
}

/// Serializes the resumable training state: model parameters with their
/// Adam moments (in `visit_params` traversal order), the optimizer's
/// bias-correction step counter, the shuffling RNG, and the learning
/// curve so far.
fn encode_teacher(
    model: &mut SingleTaskModel,
    opt: &Optim,
    rng: &Rng,
    scores: &[f32],
    epoch: usize,
    fingerprint: u64,
) -> Envelope {
    let mut env = Envelope::new(TEACHER_KIND, TEACHER_SCHEMA);

    let mut w = ByteWriter::new();
    w.put_u64(fingerprint);
    w.put_u64(epoch as u64);
    w.put_u64(opt.step_count());
    w.put_u32(scores.len() as u32);
    for &s in scores {
        w.put_f32(s);
    }
    env.push("meta", w.into_bytes());

    let state = rng.state();
    let mut w = ByteWriter::new();
    for k in state.key {
        w.put_u32(k);
    }
    w.put_u64(state.counter);
    for b in state.buf {
        w.put_u32(b);
    }
    w.put_u64(state.index as u64);
    match state.spare_normal {
        Some(z) => {
            w.put_u8(1);
            w.put_f32(z);
        }
        None => w.put_u8(0),
    }
    env.push("rng", w.into_bytes());

    let mut w = ByteWriter::new();
    let mut count = 0u32;
    model.visit_params(&mut |_| count += 1);
    w.put_u32(count);
    model.visit_params(&mut |p| {
        w.put_u64(p.value.numel() as u64);
        for t in [&p.value, &p.m, &p.v] {
            for &x in t.data() {
                w.put_f32(x);
            }
        }
    });
    env.push("params", w.into_bytes());
    env
}

/// Restores training state from a snapshot; returns
/// `(next_epoch, scores_so_far)`.
fn decode_teacher(
    env: &Envelope,
    model: &mut SingleTaskModel,
    opt: &mut Optim,
    rng: &mut Rng,
    fingerprint: u64,
) -> Result<Option<(usize, Vec<f32>)>> {
    if env.schema != TEACHER_SCHEMA {
        return Err(TensorError::Io(format!(
            "checkpoint corrupt: teacher schema v{} unsupported (expected v{TEACHER_SCHEMA})",
            env.schema
        )));
    }
    let mut r = ByteReader::new(env.section("meta")?);
    if r.get_u64()? != fingerprint {
        // Same kind, different run: not corruption, just not ours.
        return Ok(None);
    }
    let epoch = r.get_u64()? as usize;
    let steps = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut scores = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        scores.push(r.get_f32()?);
    }

    let mut r = ByteReader::new(env.section("rng")?);
    let mut key = [0u32; 8];
    for k in &mut key {
        *k = r.get_u32()?;
    }
    let counter = r.get_u64()?;
    let mut buf = [0u32; 16];
    for b in &mut buf {
        *b = r.get_u32()?;
    }
    let index = r.get_len(16)?;
    let spare_normal = match r.get_u8()? {
        0 => None,
        _ => Some(r.get_f32()?),
    };
    *rng = Rng::restore(&gmorph_tensor::rng::RngState {
        key,
        counter,
        buf,
        index,
        spare_normal,
    });
    opt.set_step_count(steps);

    let mut r = ByteReader::new(env.section("params")?);
    let count = r.get_u32()?;
    let mut actual = 0u32;
    model.visit_params(&mut |_| actual += 1);
    if count != actual {
        return Err(TensorError::Io(format!(
            "checkpoint corrupt: snapshot has {count} parameters, model has {actual}"
        )));
    }
    let mut err: Option<TensorError> = None;
    model.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        let mut restore = || -> Result<()> {
            let numel = r.get_len(1 << 28)?;
            if numel != p.value.numel() {
                return Err(TensorError::Io(format!(
                    "checkpoint corrupt: parameter numel {numel} != model's {}",
                    p.value.numel()
                )));
            }
            for t in [&mut p.value, &mut p.m, &mut p.v] {
                for x in t.data_mut() {
                    *x = r.get_f32()?;
                }
            }
            p.zero_grad();
            Ok(())
        };
        err = restore().err();
    });
    match err {
        Some(e) => Err(e),
        None => Ok(Some((epoch + 1, scores))),
    }
}

/// Trains a teacher on one task of a dataset; returns per-epoch scores.
pub fn train_teacher(
    model: &mut SingleTaskModel,
    train: &MultiTaskDataset,
    test: &MultiTaskDataset,
    task_idx: usize,
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    train_teacher_checkpointed(model, train, test, task_idx, cfg, None)
}

/// Trains a teacher with optional crash-safe checkpointing.
///
/// With `ckpt = Some(opts)` the full training state — parameters with
/// optimizer moments, the Adam step counter, the shuffling RNG, and the
/// learning curve — is snapshotted after every epoch, and (when
/// `opts.resume` is set) restored from the newest valid snapshot before
/// training. A resumed run reproduces the uninterrupted run's loss
/// trajectory bit-exactly.
pub fn train_teacher_checkpointed(
    model: &mut SingleTaskModel,
    train: &MultiTaskDataset,
    test: &MultiTaskDataset,
    task_idx: usize,
    cfg: &TrainConfig,
    ckpt: Option<&CheckpointOptions>,
) -> Result<TrainReport> {
    if task_idx >= train.tasks.len() {
        return Err(TensorError::OutOfBounds {
            op: "train_teacher",
            index: task_idx,
            bound: train.tasks.len(),
        });
    }
    let task = train.tasks[task_idx].clone();
    let _span = gmorph_telemetry::span!(
        "teacher.train",
        task = task.name.as_str(),
        epochs = cfg.epochs
    );
    let mut rng = Rng::new(cfg.seed ^ 0x07EA_C4E8);
    let mut opt = Optim::adam(cfg.lr);
    let mut scores = Vec::with_capacity(cfg.epochs);
    let mut start_epoch = 1usize;
    let fingerprint = teacher_fingerprint(model, &task.name, cfg);
    if let Some(opts) = ckpt {
        if opts.resume {
            if let Some(env) = load_latest(&opts.dir, TEACHER_KIND, TEACHER_KIND)? {
                if let Some((next, restored)) =
                    decode_teacher(&env, model, &mut opt, &mut rng, fingerprint)?
                {
                    start_epoch = next;
                    scores = restored;
                    gmorph_telemetry::point!(
                        "teacher.resumed",
                        task = task.name.as_str(),
                        next_epoch = start_epoch
                    );
                }
            }
        }
    }
    let mut manager = ckpt.map(|opts| CheckpointManager::new(opts, TEACHER_KIND));
    for epoch in start_epoch..=cfg.epochs {
        for batch in train.batch_indices(cfg.batch, &mut rng) {
            let x = train.inputs.select_rows(&batch)?;
            let y = model.forward(&x, Mode::Train)?;
            let (loss, grad) = batch_loss(&y, &train.labels[task_idx], task.loss, &batch)?;
            // A non-finite teacher loss means the run is unsalvageable:
            // fail loudly with a structured event rather than silently
            // optimizing on NaN for the remaining epochs.
            health::check_loss("teacher.train", loss)?;
            model.backward(&grad)?;
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
        }
        let score = evaluate(model, test, task_idx)?;
        gmorph_telemetry::point!(
            "teacher.epoch",
            task = task.name.as_str(),
            epoch = epoch,
            score = score
        );
        gmorph_telemetry::counter!("teacher.epochs");
        scores.push(score);
        if let Some(mgr) = manager.as_mut() {
            let env = encode_teacher(model, &opt, &rng, &scores, epoch, fingerprint);
            mgr.tick(epoch, env)?;
        }
        if let Some(opts) = ckpt {
            opts.maybe_crash(epoch);
        }
    }
    let final_score = scores.last().copied().unwrap_or(0.0);
    Ok(TrainReport {
        scores,
        final_score,
    })
}

/// Scores a model on one task of a dataset with the task's metric.
pub fn evaluate(
    model: &mut SingleTaskModel,
    ds: &MultiTaskDataset,
    task_idx: usize,
) -> Result<f32> {
    let logits = eval_logits(model, ds)?;
    metrics::score(ds.tasks[task_idx].metric, &logits, &ds.labels[task_idx])
}

/// Runs a model over a dataset in eval mode, batching to bound memory.
pub fn eval_logits(model: &mut SingleTaskModel, ds: &MultiTaskDataset) -> Result<Tensor> {
    let mut outs = Vec::new();
    let n = ds.len();
    let batch = 64usize;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let ix: Vec<usize> = (i..hi).collect();
        let x = ds.inputs.select_rows(&ix)?;
        let y = model.forward(&x, Mode::Eval)?;
        for r in 0..y.dims()[0] {
            outs.push(y.row(r)?);
        }
        i = hi;
    }
    Tensor::stack(&outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{vgg, VggDepth, VisionScale};
    use gmorph_data::faces::{generate, FaceTask, FacesConfig};

    #[test]
    fn teacher_learns_above_chance() {
        let mut rng = Rng::new(0);
        let cfg = FacesConfig {
            samples: 160,
            noise: 0.02,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender], &mut rng).unwrap();
        let split = ds.split(0.75, &mut rng).unwrap();
        let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), &ds.tasks[0]).unwrap();
        let mut model = spec.build(&mut rng).unwrap();
        let report = train_teacher(
            &mut model,
            &split.train,
            &split.test,
            0,
            &TrainConfig {
                epochs: 6,
                batch: 32,
                lr: 3e-3,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(report.scores.len(), 6);
        assert!(
            report.final_score > 0.8,
            "gender teacher should beat chance decisively, got {}",
            report.final_score
        );
    }

    #[test]
    fn evaluate_rejects_bad_task_index() {
        let mut rng = Rng::new(1);
        let cfg = FacesConfig {
            samples: 8,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Age], &mut rng).unwrap();
        let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), &ds.tasks[0]).unwrap();
        let mut model = spec.build(&mut rng).unwrap();
        assert!(train_teacher(
            &mut model,
            &ds,
            &ds,
            3,
            &TrainConfig::default()
        )
        .is_err());
    }
}
