//! Teacher training: fitting the task-specific "well-trained DNNs" that
//! GMorph takes as input.
//!
//! GMorph itself never trains with labels (fine-tuning is distillation,
//! §5.2); labels are used only here, to produce teachers, and in the
//! accuracy estimator, to *score* candidates.

use crate::model::SingleTaskModel;
use gmorph_data::metrics;
use gmorph_data::{Labels, LossKind, MultiTaskDataset};
use gmorph_nn::loss::{bce_with_logits, cross_entropy};
use gmorph_nn::optim::Optim;
use gmorph_nn::Mode;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Teacher-training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch: 32,
            lr: 3e-3,
            seed: 0,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Test score after each epoch.
    pub scores: Vec<f32>,
    /// Final test score.
    pub final_score: f32,
}

fn batch_loss(
    logits: &Tensor,
    labels: &Labels,
    loss: LossKind,
    indices: &[usize],
) -> Result<(f32, Tensor)> {
    match (loss, labels) {
        (LossKind::CrossEntropy, Labels::Classes(all)) => {
            let batch_labels: Vec<usize> = indices.iter().map(|&i| all[i]).collect();
            cross_entropy(logits, &batch_labels)
        }
        (LossKind::BceMultiLabel, Labels::MultiHot(all)) => {
            let targets = all.select_rows(indices)?;
            bce_with_logits(logits, &targets)
        }
        _ => Err(TensorError::InvalidArgument {
            op: "batch_loss",
            msg: "loss/label kind mismatch".to_string(),
        }),
    }
}

/// Trains a teacher on one task of a dataset; returns per-epoch scores.
pub fn train_teacher(
    model: &mut SingleTaskModel,
    train: &MultiTaskDataset,
    test: &MultiTaskDataset,
    task_idx: usize,
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    if task_idx >= train.tasks.len() {
        return Err(TensorError::OutOfBounds {
            op: "train_teacher",
            index: task_idx,
            bound: train.tasks.len(),
        });
    }
    let task = train.tasks[task_idx].clone();
    let _span = gmorph_telemetry::span!(
        "teacher.train",
        task = task.name.as_str(),
        epochs = cfg.epochs
    );
    let mut rng = Rng::new(cfg.seed ^ 0x07EA_C4E8);
    let mut opt = Optim::adam(cfg.lr);
    let mut scores = Vec::with_capacity(cfg.epochs);
    for epoch in 1..=cfg.epochs {
        for batch in train.batch_indices(cfg.batch, &mut rng) {
            let x = train.inputs.select_rows(&batch)?;
            let y = model.forward(&x, Mode::Train)?;
            let (_, grad) = batch_loss(&y, &train.labels[task_idx], task.loss, &batch)?;
            model.backward(&grad)?;
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
        }
        let score = evaluate(model, test, task_idx)?;
        gmorph_telemetry::point!(
            "teacher.epoch",
            task = task.name.as_str(),
            epoch = epoch,
            score = score
        );
        gmorph_telemetry::counter!("teacher.epochs");
        scores.push(score);
    }
    let final_score = scores.last().copied().unwrap_or(0.0);
    Ok(TrainReport {
        scores,
        final_score,
    })
}

/// Scores a model on one task of a dataset with the task's metric.
pub fn evaluate(
    model: &mut SingleTaskModel,
    ds: &MultiTaskDataset,
    task_idx: usize,
) -> Result<f32> {
    let logits = eval_logits(model, ds)?;
    metrics::score(ds.tasks[task_idx].metric, &logits, &ds.labels[task_idx])
}

/// Runs a model over a dataset in eval mode, batching to bound memory.
pub fn eval_logits(model: &mut SingleTaskModel, ds: &MultiTaskDataset) -> Result<Tensor> {
    let mut outs = Vec::new();
    let n = ds.len();
    let batch = 64usize;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let ix: Vec<usize> = (i..hi).collect();
        let x = ds.inputs.select_rows(&ix)?;
        let y = model.forward(&x, Mode::Eval)?;
        for r in 0..y.dims()[0] {
            outs.push(y.row(r)?);
        }
        i = hi;
    }
    Tensor::stack(&outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{vgg, VggDepth, VisionScale};
    use gmorph_data::faces::{generate, FaceTask, FacesConfig};

    #[test]
    fn teacher_learns_above_chance() {
        let mut rng = Rng::new(0);
        let cfg = FacesConfig {
            samples: 160,
            noise: 0.02,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender], &mut rng).unwrap();
        let split = ds.split(0.75, &mut rng).unwrap();
        let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), &ds.tasks[0]).unwrap();
        let mut model = spec.build(&mut rng).unwrap();
        let report = train_teacher(
            &mut model,
            &split.train,
            &split.test,
            0,
            &TrainConfig {
                epochs: 6,
                batch: 32,
                lr: 3e-3,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(report.scores.len(), 6);
        assert!(
            report.final_score > 0.8,
            "gender teacher should beat chance decisively, got {}",
            report.final_score
        );
    }

    #[test]
    fn evaluate_rejects_bad_task_index() {
        let mut rng = Rng::new(1);
        let cfg = FacesConfig {
            samples: 8,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Age], &mut rng).unwrap();
        let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), &ds.tasks[0]).unwrap();
        let mut model = spec.build(&mut rng).unwrap();
        assert!(train_teacher(
            &mut model,
            &ds,
            &ds,
            3,
            &TrainConfig::default()
        )
        .is_err());
    }
}
