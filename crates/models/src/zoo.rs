//! The seven benchmarks of Table 2, wired to synthetic datasets.

use crate::families::{bert, resnet, vgg, vit, ResNetDepth, SeqScale, VggDepth, VisionScale};
use crate::model::ModelSpec;
use gmorph_data::dataset::MultiTaskDataset;
use gmorph_data::faces::{self, FaceTask, FacesConfig};
use gmorph_data::scenes::{self, ScenesConfig};
use gmorph_data::text::{self, TextConfig};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::Result;

/// Benchmark identifiers matching the paper's B1-B7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchId {
    /// Age/Gender/Ethnicity, 3× VGG-13 (UTKFace stand-in).
    B1,
    /// Emotion/Age/Gender, 3× VGG-16 (FER2013+Adience stand-in).
    B2,
    /// Emotion/Age/Gender, VGG-13/16/11 (heterogeneous VGGs).
    B3,
    /// Object/Salient, ResNet-34 + ResNet-18 (VOC2007+SOS stand-in).
    B4,
    /// Object/Salient, ResNet-34 + VGG-16 (cross-family).
    B5,
    /// Object/Salient, ViT-Large + ViT-Base.
    B6,
    /// CoLA/SST, BERT-Large + BERT-Base (GLUE stand-in).
    B7,
}

impl BenchId {
    /// All benchmarks in order.
    pub fn all() -> [BenchId; 7] {
        [
            BenchId::B1,
            BenchId::B2,
            BenchId::B3,
            BenchId::B4,
            BenchId::B5,
            BenchId::B6,
            BenchId::B7,
        ]
    }

    /// Short name, e.g. `"B1"`.
    pub fn name(self) -> &'static str {
        match self {
            BenchId::B1 => "B1",
            BenchId::B2 => "B2",
            BenchId::B3 => "B3",
            BenchId::B4 => "B4",
            BenchId::B5 => "B5",
            BenchId::B6 => "B6",
            BenchId::B7 => "B7",
        }
    }

    /// Parses `"B1"`-style names.
    pub fn parse(s: &str) -> Option<BenchId> {
        BenchId::all()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for BenchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Dataset-size profile for benchmark construction.
#[derive(Debug, Clone)]
pub struct DataProfile {
    /// Samples in the generated dataset (before the train/test split).
    pub samples: usize,
    /// Train fraction of the split.
    pub train_frac: f32,
    /// Vision image side (divisible by 16).
    pub img: usize,
    /// Text sequence length.
    pub seq_len: usize,
    /// Text vocabulary size.
    pub vocab: usize,
}

impl DataProfile {
    /// Tiny profile for unit/integration tests.
    pub fn smoke() -> Self {
        DataProfile {
            samples: 96,
            train_frac: 0.7,
            img: 16,
            seq_len: 12,
            vocab: 48,
        }
    }

    /// Standard profile for experiments.
    pub fn standard() -> Self {
        DataProfile {
            samples: 384,
            train_frac: 0.75,
            img: 16,
            seq_len: 12,
            vocab: 48,
        }
    }
}

/// A fully materialized benchmark: model specs at both scales plus data.
#[derive(Debug, Clone)]
pub struct BenchmarkDef {
    /// Which benchmark this is.
    pub id: BenchId,
    /// Mini-scale (trainable) model specs, one per task, dataset order.
    pub mini: Vec<ModelSpec>,
    /// Paper-scale model specs (estimation only), same order.
    pub paper: Vec<ModelSpec>,
    /// The generated dataset.
    pub dataset: MultiTaskDataset,
}

/// Mini transformer scales (Base/Large relationship preserved).
fn seq_mini(large: bool) -> SeqScale {
    if large {
        SeqScale {
            d: 48,
            heads: 4,
            depth: 5,
        }
    } else {
        SeqScale {
            d: 32,
            heads: 4,
            depth: 3,
        }
    }
}

/// Paper transformer scales (same depth as mini so node ids correspond;
/// widths at the published values).
fn seq_paper(large: bool) -> SeqScale {
    if large {
        SeqScale {
            d: 1024,
            heads: 16,
            depth: 5,
        }
    } else {
        SeqScale {
            d: 768,
            heads: 12,
            depth: 3,
        }
    }
}

/// Builds a benchmark: generates its dataset and both model-spec sets.
pub fn build(id: BenchId, profile: &DataProfile, seed: u64) -> Result<BenchmarkDef> {
    let mut rng = Rng::new(seed ^ BENCH_SEED);
    let v_mini = VisionScale {
        in_channels: 3,
        img: profile.img,
        base: 4,
    };
    let v_paper = VisionScale::paper();

    let (dataset, mini, paper): (MultiTaskDataset, Vec<ModelSpec>, Vec<ModelSpec>) = match id {
        BenchId::B1 => {
            let cfg = FacesConfig {
                samples: profile.samples,
                img: profile.img,
                ..Default::default()
            };
            let ds = faces::generate(
                &cfg,
                &[FaceTask::Age, FaceTask::Gender, FaceTask::Ethnicity],
                &mut rng,
            )?;
            let mini = ds
                .tasks
                .iter()
                .map(|t| vgg(VggDepth::Vgg13, v_mini, t))
                .collect::<Result<Vec<_>>>()?;
            let paper = ds
                .tasks
                .iter()
                .map(|t| vgg(VggDepth::Vgg13, v_paper, t))
                .collect::<Result<Vec<_>>>()?;
            (ds, mini, paper)
        }
        BenchId::B2 | BenchId::B3 => {
            let cfg = FacesConfig {
                samples: profile.samples,
                img: profile.img,
                ..Default::default()
            };
            let ds = faces::generate(
                &cfg,
                &[FaceTask::Emotion, FaceTask::Age, FaceTask::Gender],
                &mut rng,
            )?;
            let depths = if id == BenchId::B2 {
                [VggDepth::Vgg16, VggDepth::Vgg16, VggDepth::Vgg16]
            } else {
                [VggDepth::Vgg13, VggDepth::Vgg16, VggDepth::Vgg11]
            };
            let mini = ds
                .tasks
                .iter()
                .zip(depths.iter())
                .map(|(t, &d)| vgg(d, v_mini, t))
                .collect::<Result<Vec<_>>>()?;
            let paper = ds
                .tasks
                .iter()
                .zip(depths.iter())
                .map(|(t, &d)| vgg(d, v_paper, t))
                .collect::<Result<Vec<_>>>()?;
            (ds, mini, paper)
        }
        BenchId::B4 | BenchId::B5 => {
            let cfg = ScenesConfig {
                samples: profile.samples,
                img: profile.img,
                ..Default::default()
            };
            let ds = scenes::generate(&cfg, &mut rng)?;
            let object = &ds.tasks[0];
            let salient = &ds.tasks[1];
            let (mini, paper) = if id == BenchId::B4 {
                (
                    vec![
                        resnet(ResNetDepth::ResNet34, v_mini, object)?,
                        resnet(ResNetDepth::ResNet18, v_mini, salient)?,
                    ],
                    vec![
                        resnet(ResNetDepth::ResNet34, v_paper, object)?,
                        resnet(ResNetDepth::ResNet18, v_paper, salient)?,
                    ],
                )
            } else {
                (
                    vec![
                        resnet(ResNetDepth::ResNet34, v_mini, object)?,
                        vgg(VggDepth::Vgg16, v_mini, salient)?,
                    ],
                    vec![
                        resnet(ResNetDepth::ResNet34, v_paper, object)?,
                        vgg(VggDepth::Vgg16, v_paper, salient)?,
                    ],
                )
            };
            (ds, mini, paper)
        }
        BenchId::B6 => {
            let cfg = ScenesConfig {
                samples: profile.samples,
                img: profile.img,
                ..Default::default()
            };
            let ds = scenes::generate(&cfg, &mut rng)?;
            let object = &ds.tasks[0];
            let salient = &ds.tasks[1];
            let mini = vec![
                vit("ViT-Large", seq_mini(true), 3, profile.img, 4, object)?,
                vit("ViT-Base", seq_mini(false), 3, profile.img, 4, salient)?,
            ];
            let paper = vec![
                vit("ViT-Large", seq_paper(true), 3, 224, 16, object)?,
                vit("ViT-Base", seq_paper(false), 3, 224, 16, salient)?,
            ];
            (ds, mini, paper)
        }
        BenchId::B7 => {
            let cfg = TextConfig {
                samples: profile.samples,
                seq_len: profile.seq_len,
                vocab: profile.vocab,
                ..Default::default()
            };
            let ds = text::generate(&cfg, &mut rng)?;
            let cola = &ds.tasks[0];
            let sst = &ds.tasks[1];
            let mini = vec![
                bert("BERT-Large", seq_mini(true), profile.vocab, profile.seq_len, cola)?,
                bert("BERT-Base", seq_mini(false), profile.vocab, profile.seq_len, sst)?,
            ];
            let paper = vec![
                bert("BERT-Large", seq_paper(true), 30522, 128, cola)?,
                bert("BERT-Base", seq_paper(false), 30522, 128, sst)?,
            ];
            (ds, mini, paper)
        }
    };
    Ok(BenchmarkDef {
        id,
        mini,
        paper,
        dataset,
    })
}

/// Seed-mixing constant isolating benchmark RNG streams.
const BENCH_SEED: u64 = 0xB34_C45_EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_at_smoke_profile() {
        for id in BenchId::all() {
            let b = build(id, &DataProfile::smoke(), 7).unwrap();
            assert_eq!(b.mini.len(), b.paper.len(), "{id}");
            assert_eq!(b.mini.len(), b.dataset.tasks.len(), "{id}");
            for (m, p) in b.mini.iter().zip(b.paper.iter()) {
                // Same topology at both scales.
                assert_eq!(m.blocks.len(), p.blocks.len(), "{id}: {}", m.name);
                assert!(p.flops().unwrap() > m.flops().unwrap(), "{id}");
                // Tasks line up with the dataset.
                assert_eq!(m.task.classes, p.task.classes);
            }
        }
    }

    #[test]
    fn benchmark_counts_match_table_2() {
        let p = DataProfile::smoke();
        assert_eq!(build(BenchId::B1, &p, 0).unwrap().mini.len(), 3);
        assert_eq!(build(BenchId::B2, &p, 0).unwrap().mini.len(), 3);
        assert_eq!(build(BenchId::B3, &p, 0).unwrap().mini.len(), 3);
        for id in [BenchId::B4, BenchId::B5, BenchId::B6, BenchId::B7] {
            assert_eq!(build(id, &p, 0).unwrap().mini.len(), 2);
        }
    }

    #[test]
    fn b3_models_are_heterogeneous() {
        let b = build(BenchId::B3, &DataProfile::smoke(), 1).unwrap();
        let lens: Vec<usize> = b.mini.iter().map(|m| m.blocks.len()).collect();
        assert!(lens[0] != lens[1] && lens[1] != lens[2]);
    }

    #[test]
    fn parse_and_names() {
        assert_eq!(BenchId::parse("b4"), Some(BenchId::B4));
        assert_eq!(BenchId::parse("B7"), Some(BenchId::B7));
        assert_eq!(BenchId::parse("B9"), None);
        assert_eq!(BenchId::B2.to_string(), "B2");
    }

    #[test]
    fn paper_transformers_use_published_widths() {
        let b6 = build(BenchId::B6, &DataProfile::smoke(), 0).unwrap();
        let widths: Vec<usize> = b6
            .paper
            .iter()
            .map(|m| {
                m.blocks
                    .iter()
                    .find_map(|s| match s {
                        gmorph_nn::BlockSpec::Transformer { d, .. } => Some(*d),
                        _ => None,
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(widths, vec![1024, 768]); // ViT-Large, ViT-Base.
        let b7 = build(BenchId::B7, &DataProfile::smoke(), 0).unwrap();
        for m in &b7.paper {
            let vocab = m
                .blocks
                .iter()
                .find_map(|s| match s {
                    gmorph_nn::BlockSpec::TokenEmbed { vocab, .. } => Some(*vocab),
                    _ => None,
                })
                .unwrap();
            assert_eq!(vocab, 30522); // BERT vocabulary.
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(BenchId::B1, &DataProfile::smoke(), 42).unwrap();
        let b = build(BenchId::B1, &DataProfile::smoke(), 42).unwrap();
        assert_eq!(a.dataset.inputs.data(), b.dataset.inputs.data());
    }
}
