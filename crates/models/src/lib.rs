//! Model zoo and benchmark registry for the GMorph reproduction.
//!
//! Provides the four model families the paper evaluates (VGG-11/13/16,
//! ResNet-18/34, ViT-Base/Large, BERT-Base/Large) as *scaled* architectures:
//! every family builder takes a [`families::VisionScale`] /
//! [`families::SeqScale`], so the same topology can be instantiated at
//! "mini" scale (trainable on one CPU core) and at "paper" scale (used only
//! by the analytic FLOPs/latency estimators — weights are never allocated
//! for it).
//!
//! [`zoo`] wires models and synthetic datasets into the seven benchmarks of
//! Table 2; [`train`] trains task-specific *teacher* models (the
//! "well-trained DNNs" GMorph takes as input); [`cache`] persists trained
//! weights so experiments do not retrain teachers.

pub mod cache;
pub mod families;
pub mod model;
pub mod train;
pub mod zoo;

pub use model::{ModelSpec, SingleTaskModel};
pub use zoo::{BenchId, BenchmarkDef, DataProfile};
