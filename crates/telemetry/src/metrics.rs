//! Counters and histograms: cheap in-process aggregation.
//!
//! Hot paths (the kernel engine, the search loop) record into a global
//! registry instead of emitting one event per observation — the JSONL
//! stream stays bounded and the per-record cost is one map update. The
//! registry is flushed to the active sink as `counter`/`histogram`
//! summary events on [`crate::shutdown`] and rendered as a human-readable
//! table by [`summary_table`].
//!
//! Histograms use power-of-two buckets: bucket `i` counts values in
//! `(2^(i-1), 2^i]` (bucket 0 catches everything ≤ 1). Quantiles reported
//! from bucket upper bounds are therefore upper estimates with at most 2x
//! resolution — plenty for latency profiling.

use crate::event::{Event, EventKind, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

const BUCKETS: usize = 64;

#[derive(Clone)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Upper bound of the bucket holding quantile `q` (0..=1).
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        self.max
    }
}

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 1.0 {
        return 0;
    }
    let int = v.ceil().min(u64::MAX as f64) as u64;
    // Bit length of the integer part: 2 -> 1, 3..4 -> 2, 5..8 -> 3, ...
    let bits = 64 - (int - 1).leading_zeros() as usize;
    bits.min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> f64 {
    (1u64 << i.min(62)) as f64
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn registry() -> MutexGuard<'static, Option<Registry>> {
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Adds `n` to a counter. No-op while telemetry is disabled.
pub fn counter_add(name: &str, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut guard = registry();
    let reg = guard.get_or_insert_with(Registry::default);
    *reg.counters.entry(name.to_string()).or_insert(0) += n;
}

/// Records one histogram observation. No-op while telemetry is disabled.
pub fn hist_record(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    if !v.is_finite() {
        return;
    }
    let mut guard = registry();
    let reg = guard.get_or_insert_with(Registry::default);
    reg.hists
        .entry(name.to_string())
        .or_insert_with(Hist::new)
        .record(v);
}

/// Current value of a counter (0 if never incremented). Readable even
/// while telemetry is disabled, so tests can assert the disabled path
/// recorded nothing.
pub fn counter_value(name: &str) -> u64 {
    registry()
        .as_ref()
        .and_then(|r| r.counters.get(name).copied())
        .unwrap_or(0)
}

/// Snapshot of all counters.
pub fn counters() -> Vec<(String, u64)> {
    registry()
        .as_ref()
        .map(|r| r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect())
        .unwrap_or_default()
}

/// Summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (bucket upper bound).
    pub p50: f64,
    /// 99th percentile (bucket upper bound).
    pub p99: f64,
}

/// Snapshot of all histograms.
pub fn histograms() -> Vec<(String, HistSummary)> {
    registry()
        .as_ref()
        .map(|r| {
            r.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistSummary {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0.0 } else { h.min },
                            max: if h.count == 0 { 0.0 } else { h.max },
                            p50: h.quantile(0.5),
                            p99: h.quantile(0.99),
                        },
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Clears all counters and histograms.
pub fn reset() {
    *registry() = None;
}

/// Emits every counter and histogram as summary events to the active
/// sink. Called by [`crate::shutdown`]; safe to call repeatedly (values
/// are not cleared).
pub fn flush_to_sink() {
    if !crate::enabled() {
        return;
    }
    for (name, value) in counters() {
        crate::emit(
            Event::new(EventKind::Counter, name)
                .with_fields(vec![("value".to_string(), Value::from(value))]),
        );
    }
    for (name, h) in histograms() {
        crate::emit(Event::new(EventKind::Histogram, name).with_fields(vec![
            ("count".to_string(), Value::from(h.count)),
            ("sum".to_string(), Value::from(h.sum)),
            ("min".to_string(), Value::from(h.min)),
            ("max".to_string(), Value::from(h.max)),
            ("p50".to_string(), Value::from(h.p50)),
            ("p99".to_string(), Value::from(h.p99)),
        ]));
    }
}

/// Renders the end-of-run human-readable summary table.
pub fn summary_table() -> String {
    let counters = counters();
    let hists = histograms();
    let mut out = String::new();
    if counters.is_empty() && hists.is_empty() {
        return "telemetry: no metrics recorded\n".to_string();
    }
    if !counters.is_empty() {
        out.push_str("counter                                      value\n");
        out.push_str("-------------------------------------------  ----------\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "{name:<43}  {value:>10}");
        }
    }
    if !hists.is_empty() {
        if !counters.is_empty() {
            out.push('\n');
        }
        out.push_str(
            "histogram                                    count        sum        p50        p99        max\n",
        );
        out.push_str(
            "-------------------------------------------  ------  ---------  ---------  ---------  ---------\n",
        );
        for (name, h) in &hists {
            let _ = writeln!(
                out,
                "{name:<43}  {:>6}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
                h.count, h.sum, h.p50, h.p99, h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::install_test_sink;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.5), 1);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(3.0), 2);
        assert_eq!(bucket_index(4.0), 2);
        assert_eq!(bucket_index(5.0), 3);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(-7.0), 0);
    }

    #[test]
    fn counters_and_hists_accumulate_when_enabled() {
        let _guard = install_test_sink();
        counter_add("t.counter", 1);
        counter_add("t.counter", 2);
        assert_eq!(counter_value("t.counter"), 3);
        for v in [1.0, 2.0, 4.0, 100.0] {
            hist_record("t.hist", v);
        }
        let hists = histograms();
        let (_, h) = hists.iter().find(|(k, _)| k == "t.hist").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 107.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!(h.p50 >= 2.0 && h.p50 <= 4.0, "p50 = {}", h.p50);
        assert!(h.p99 >= 100.0, "p99 = {}", h.p99);
        let table = summary_table();
        assert!(table.contains("t.counter"));
        assert!(table.contains("t.hist"));
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _gate = crate::sink::test_lock();
        counter_add("t.disabled", 5);
        hist_record("t.disabled.h", 1.0);
        assert_eq!(counter_value("t.disabled"), 0);
        assert!(histograms().iter().all(|(k, _)| k != "t.disabled.h"));
    }

    #[test]
    fn flush_emits_summary_events() {
        let guard = install_test_sink();
        counter_add("t.flush.c", 7);
        hist_record("t.flush.h", 3.0);
        flush_to_sink();
        let events = guard.events();
        let counter = events
            .iter()
            .find(|e| e.kind == EventKind::Counter && e.name == "t.flush.c")
            .expect("counter event");
        assert_eq!(counter.field("value"), Some(&Value::Int(7)));
        let hist = events
            .iter()
            .find(|e| e.kind == EventKind::Histogram && e.name == "t.flush.h")
            .expect("histogram event");
        assert_eq!(hist.field("count"), Some(&Value::Int(1)));
    }
}
