//! gmorph-telemetry: structured tracing, metrics, and profiling.
//!
//! A zero-dependency observability layer shared by every GMorph crate:
//!
//! - **Spans** ([`span!`]) — hierarchical RAII regions carrying wall-time
//!   (`duration_us`) and arbitrary typed fields, nested per thread.
//! - **Points and meta events** ([`point!`], [`meta!`]) — instantaneous
//!   structured observations (one search iteration, one finetune epoch,
//!   run configuration).
//! - **Counters and histograms** ([`counter!`], [`hist!`]) — cheap
//!   in-process aggregation for hot paths (kernel dispatches, GEMM
//!   latencies); flushed as summary events at [`shutdown`] and rendered
//!   by [`metrics::summary_table`].
//! - **Sinks** ([`Sink`]) — [`JsonlSink`] writes the `GMORPH_TRACE`
//!   artifact, [`MemorySink`] backs tests.
//!
//! Telemetry is **off by default** and the disabled path is near-free:
//! every macro and record function first checks one relaxed atomic load
//! and performs no allocation or formatting unless a sink is installed.
//!
//! ```no_run
//! let _run = gmorph_telemetry::span!("optimize", bench = "B1");
//! gmorph_telemetry::point!("search.iter", iter = 3usize, accepted = true);
//! gmorph_telemetry::counter!("search.evaluated", 1);
//! gmorph_telemetry::hist!("gemm.us", 125.0);
//! ```

pub mod event;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod span;

pub use event::{Event, EventKind, Value};
pub use sink::{JsonlSink, MemorySink, Sink};
pub use span::SpanGuard;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Fast-path gate: true while a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed sink (None while disabled).
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);
/// Time origin for `ts_us`; fixed at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// True while telemetry is collecting. One relaxed atomic load — callers
/// on hot paths gate all event construction on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process's telemetry epoch (first call wins).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Installs a sink and enables collection. Replaces any previous sink
/// without flushing it; call [`shutdown`] first to hand off cleanly.
pub fn install(sink: Arc<dyn Sink>) {
    // Pin the epoch before the first event can be stamped.
    let _ = EPOCH.get_or_init(Instant::now);
    *SINK.lock().unwrap_or_else(|p| p.into_inner()) = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Flushes aggregated metrics into the sink as summary events, flushes
/// the sink, and disables collection. Idempotent; a no-op when disabled.
pub fn shutdown() {
    if enabled() {
        metrics::flush_to_sink();
    }
    ENABLED.store(false, Ordering::SeqCst);
    let sink = SINK.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Installs a [`JsonlSink`] at the path named by the `GMORPH_TRACE`
/// environment variable, if set and non-empty. Returns the trace path
/// when telemetry was enabled.
pub fn init_from_env() -> Option<PathBuf> {
    let raw = std::env::var_os("GMORPH_TRACE")?;
    if raw.is_empty() {
        return None;
    }
    let path = PathBuf::from(raw);
    match JsonlSink::create(&path) {
        Ok(sink) => {
            install(Arc::new(sink));
            Some(path)
        }
        Err(e) => {
            eprintln!("gmorph-telemetry: cannot open {}: {e}", path.display());
            None
        }
    }
}

/// Delivers one event to the installed sink. Cheap no-op when disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    // Clone the Arc under the lock, record outside it: sinks may block
    // (file IO) and recording must not serialize unrelated threads on
    // the registry lock.
    let sink = SINK
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .cloned();
    if let Some(sink) = sink {
        sink.record(&event);
    }
}

/// Opens a hierarchical span; returns an RAII guard recording
/// `span_begin` now and `span_end` (with `duration_us`) on drop.
/// Fields are lazy: the expressions are not evaluated while disabled.
///
/// ```no_run
/// let _g = gmorph_telemetry::span!("finetune", candidate = 7usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::SpanGuard::enter($name, || {
            ::std::vec![$((
                ::core::stringify!($key).to_string(),
                $crate::Value::from($val),
            )),+]
        })
    };
}

/// Records one instantaneous `point` event with typed fields.
/// Field expressions are not evaluated while disabled.
#[macro_export]
macro_rules! point {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $crate::Event::new($crate::EventKind::Point, $name).with_fields(
                    ::std::vec![$((
                        ::core::stringify!($key).to_string(),
                        $crate::Value::from($val),
                    )),*],
                ),
            );
        }
    };
}

/// Records one `meta` event (run configuration, environment facts).
/// Field expressions are not evaluated while disabled.
#[macro_export]
macro_rules! meta {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                $crate::Event::new($crate::EventKind::Meta, $name).with_fields(
                    ::std::vec![$((
                        ::core::stringify!($key).to_string(),
                        $crate::Value::from($val),
                    )),*],
                ),
            );
        }
    };
}

/// Adds to a named counter (aggregated; flushed at [`shutdown`]).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::metrics::counter_add($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::metrics::counter_add($name, $n)
    };
}

/// Records one observation into a named histogram (aggregated; flushed
/// at [`shutdown`]).
#[macro_export]
macro_rules! hist {
    ($name:expr, $v:expr) => {
        $crate::metrics::hist_record($name, $v)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{install_test_sink, test_lock};

    #[test]
    fn macros_emit_through_installed_sink() {
        let guard = install_test_sink();
        {
            let _outer = span!("t.lib.outer", kind = "test");
            point!("t.lib.point", n = 2usize, ok = true);
            meta!("t.lib.meta", seed = 42i64);
        }
        counter!("t.lib.counter", 3);
        hist!("t.lib.hist", 17.0);
        let events = guard.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SpanBegin));
        assert!(kinds.contains(&EventKind::SpanEnd));
        assert!(kinds.contains(&EventKind::Point));
        assert!(kinds.contains(&EventKind::Meta));
        // Point/meta events inherit the enclosing span.
        let begin = events
            .iter()
            .find(|e| e.kind == EventKind::SpanBegin)
            .unwrap();
        let point = events.iter().find(|e| e.kind == EventKind::Point).unwrap();
        assert_eq!(point.span, begin.span);
        assert_eq!(metrics::counter_value("t.lib.counter"), 3);
        // Shutdown (via guard drop) flushes metrics as summary events.
        let sink = guard.sink().clone();
        drop(guard);
        let flushed = sink.events();
        assert!(flushed
            .iter()
            .any(|e| e.kind == EventKind::Counter && e.name == "t.lib.counter"));
        assert!(flushed
            .iter()
            .any(|e| e.kind == EventKind::Histogram && e.name == "t.lib.hist"));
    }

    #[test]
    fn disabled_macros_do_not_evaluate_fields() {
        let _gate = test_lock();
        assert!(!enabled());
        fn boom() -> i64 {
            panic!("field expressions must stay lazy while disabled")
        }
        let _g = span!("t.lib.lazy", v = boom());
        point!("t.lib.lazy.point", v = boom());
        meta!("t.lib.lazy.meta", v = boom());
        assert_eq!(metrics::counter_value("t.lib.lazy"), 0);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let _gate = test_lock();
        shutdown();
        shutdown();
        assert!(!enabled());
    }

    #[test]
    fn emitted_events_validate_against_schema() {
        let guard = install_test_sink();
        {
            let _s = span!("t.lib.schema", phase = "x");
            point!("t.lib.schema.point", iter = 1usize);
        }
        counter!("t.lib.schema.counter", 2);
        hist!("t.lib.schema.hist", 8.0);
        let sink = guard.sink().clone();
        drop(guard); // flush metrics into the sink
        let lines: Vec<String> = sink.events().iter().map(|e| e.to_json()).collect();
        let stats =
            schema::validate_events(lines.iter().map(String::as_str)).expect("schema-valid");
        assert_eq!(stats.spans, 1);
        assert!(stats.by_kind.contains_key("counter"));
        assert!(stats.by_kind.contains_key("histogram"));
    }
}
