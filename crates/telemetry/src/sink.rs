//! Event sinks: where structured events go.
//!
//! Three implementations: [`JsonlSink`] appends one JSON line per event
//! to a file (the `GMORPH_TRACE` artifact), [`MemorySink`] buffers events
//! in memory for tests and programmatic inspection, and anything else can
//! implement [`Sink`].
//!
//! Because the installed sink and the metrics registry are process
//! globals, tests that enable telemetry must not run concurrently.
//! [`install_test_sink`] serializes them: it takes a process-wide lock,
//! resets all telemetry state, installs a fresh [`MemorySink`], and
//! restores the disabled state when the returned guard drops.
//! [`test_lock`] takes the same lock *without* enabling telemetry, for
//! tests asserting the disabled path.

use crate::event::Event;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// A destination for telemetry events.
pub trait Sink: Send + Sync {
    /// Records one event. Called from any thread.
    fn record(&self, event: &Event);
    /// Flushes buffered events to durable storage.
    fn flush(&self) {}
}

/// Appends events as JSON lines to a file.
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json();
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = w.flush();
    }
}

/// Buffers events in memory; the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A snapshot of all recorded events, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(event.clone());
    }
}

/// Serializes tests that touch the global telemetry state.
static TEST_GATE: Mutex<()> = Mutex::new(());

fn lock_gate() -> MutexGuard<'static, ()> {
    TEST_GATE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Holds the telemetry test gate with telemetry *disabled* and all
/// metrics cleared — for tests asserting the disabled path stays silent.
pub struct TestGate {
    _lock: MutexGuard<'static, ()>,
}

/// Locks the gate, shuts telemetry down, and clears metrics.
pub fn test_lock() -> TestGate {
    let lock = lock_gate();
    crate::shutdown();
    crate::metrics::reset();
    TestGate { _lock: lock }
}

/// Holds the telemetry test gate with a fresh [`MemorySink`] installed.
/// Dropping the guard shuts telemetry down (flushing metrics into the
/// sink) and releases the gate.
pub struct TestSinkGuard {
    sink: Arc<MemorySink>,
    _lock: MutexGuard<'static, ()>,
}

/// Installs a fresh memory sink behind the test gate.
pub fn install_test_sink() -> TestSinkGuard {
    let lock = lock_gate();
    crate::shutdown();
    crate::metrics::reset();
    let sink = MemorySink::new();
    crate::install(sink.clone());
    TestSinkGuard { sink, _lock: lock }
}

impl TestSinkGuard {
    /// Events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.sink.events()
    }

    /// The underlying sink.
    pub fn sink(&self) -> &Arc<MemorySink> {
        &self.sink
    }
}

impl Drop for TestSinkGuard {
    fn drop(&mut self) {
        crate::shutdown();
        crate::metrics::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Value};

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let guard = test_lock();
        drop(guard);
        let dir = std::env::temp_dir().join(format!("gmorph-telemetry-{}", std::process::id()));
        let path = dir.join("sink.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let e = Event {
            ts_us: 5,
            kind: EventKind::Point,
            name: "t.sink".to_string(),
            span: 0,
            parent: 0,
            thread: 1,
            fields: vec![("v".to_string(), Value::Int(9))],
        };
        sink.record(&e);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(Event::from_json(lines[0]).unwrap(), e);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_captures_emitted_events() {
        let guard = install_test_sink();
        assert!(crate::enabled());
        crate::point!("t.mem", value = 3usize);
        let events = guard.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "t.mem");
        assert_eq!(events[0].field("value"), Some(&Value::Int(3)));
        drop(guard);
        assert!(!crate::enabled());
    }
}
