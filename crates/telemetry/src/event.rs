//! The structured event: the unit every sink consumes.

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer (counts, ids, epochs).
    Int(i64),
    /// Floating point (latencies, drops, hours). Non-finite values encode
    /// to JSON `null` and decode back as NaN.
    Float(f64),
    /// String (statuses, reasons, names).
    Str(String),
    /// Boolean (flags).
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Int(i) => Json::Int(*i),
            Value::Float(f) => Json::Float(*f),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }

    fn from_json(j: &Json) -> Option<Value> {
        Some(match j {
            Json::Int(i) => Value::Int(*i),
            Json::Float(f) => Value::Float(*f),
            Json::Str(s) => Value::Str(s.clone()),
            Json::Bool(b) => Value::Bool(*b),
            Json::Null => Value::Float(f64::NAN),
            Json::Arr(_) | Json::Obj(_) => return None,
        })
    }

    /// The numeric value, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        i64::try_from(v).map(Value::Int).unwrap_or(Value::Float(v as f64))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// What kind of record an event is (the `kind` JSONL key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A span opened (`duration_us` arrives with the matching end).
    SpanBegin,
    /// A span closed; fields carry `duration_us`.
    SpanEnd,
    /// An instantaneous structured observation.
    Point,
    /// A counter value flushed at shutdown; fields carry `value`.
    Counter,
    /// A histogram summary flushed at shutdown; fields carry
    /// `count`/`sum`/`min`/`max`/`p50`/`p99`.
    Histogram,
    /// Run metadata (configuration, environment).
    Meta,
}

impl EventKind {
    /// Wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
            EventKind::Counter => "counter",
            EventKind::Histogram => "histogram",
            EventKind::Meta => "meta",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "span_begin" => EventKind::SpanBegin,
            "span_end" => EventKind::SpanEnd,
            "point" => EventKind::Point,
            "counter" => EventKind::Counter,
            "histogram" => EventKind::Histogram,
            "meta" => EventKind::Meta,
            _ => return None,
        })
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since telemetry was installed.
    pub ts_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Event name, dot-separated taxonomy (`search.iter`, `finetune.eval`).
    pub name: String,
    /// Id of the span this event belongs to (0 = none). For span
    /// begin/end records, the span's own id.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Telemetry thread id (small dense integers, assigned per thread).
    pub thread: u64,
    /// Typed payload fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event stamped with the current time, thread, and span
    /// context. Callers attach fields with [`Event::with_fields`].
    pub fn new(kind: EventKind, name: impl Into<String>) -> Event {
        Event {
            ts_us: crate::now_us(),
            kind,
            name: name.into(),
            span: crate::span::current_span(),
            parent: 0,
            thread: crate::span::thread_id(),
            fields: Vec::new(),
        }
    }

    /// Attaches payload fields.
    pub fn with_fields(mut self, fields: Vec<(String, Value)>) -> Event {
        self.fields = fields;
        self
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes to one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::encode_str(&self.name, &mut out);
        out.push_str(",\"span\":");
        out.push_str(&self.span.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"thread\":");
        out.push_str(&self.thread.to_string());
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::encode_str(k, &mut out);
            out.push(':');
            out.push_str(&v.to_json().encode());
        }
        out.push_str("}}");
        out
    }

    /// Parses an event from one JSON line written by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, String> {
        let doc = Json::parse(line)?;
        let uint = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid {key:?}"))
        };
        let kind_str = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        let kind =
            EventKind::parse(kind_str).ok_or_else(|| format!("unknown kind {kind_str:?}"))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing \"name\"")?
            .to_string();
        let fields_obj = match doc.get("fields") {
            Some(Json::Obj(m)) => m.clone(),
            Some(_) => return Err("\"fields\" is not an object".to_string()),
            None => BTreeMap::new(),
        };
        let mut fields = Vec::with_capacity(fields_obj.len());
        for (k, v) in &fields_obj {
            let value = Value::from_json(v)
                .ok_or_else(|| format!("field {k:?} has a non-scalar value"))?;
            fields.push((k.clone(), value));
        }
        Ok(Event {
            ts_us: uint("ts_us")?,
            kind,
            name,
            span: uint("span")?,
            parent: uint("parent")?,
            thread: uint("thread")?,
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_round_trips() {
        let e = Event {
            ts_us: 1234,
            kind: EventKind::Point,
            name: "search.iter".to_string(),
            span: 7,
            parent: 3,
            thread: 1,
            fields: vec![
                // Sorted by key: `from_json` yields fields in name order.
                ("iter".to_string(), Value::Int(5)),
                ("latency_ms".to_string(), Value::Float(2.25)),
                ("met".to_string(), Value::Bool(true)),
                ("status".to_string(), Value::Str("evaluated".to_string())),
            ],
        };
        let line = e.to_json();
        let back = Event::from_json(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn nan_fields_round_trip_as_nan() {
        let e = Event {
            ts_us: 0,
            kind: EventKind::Point,
            name: "x".to_string(),
            span: 0,
            parent: 0,
            thread: 0,
            fields: vec![("drop".to_string(), Value::Float(f64::NAN))],
        };
        let back = Event::from_json(&e.to_json()).unwrap();
        match back.field("drop") {
            Some(Value::Float(f)) => assert!(f.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Point,
            EventKind::Counter,
            EventKind::Histogram,
            EventKind::Meta,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Event::from_json("{}").is_err());
        assert!(Event::from_json("not json").is_err());
        assert!(
            Event::from_json(r#"{"ts_us":1,"kind":"nope","name":"x","span":0,"parent":0,"thread":0,"fields":{}}"#)
                .is_err()
        );
    }
}
