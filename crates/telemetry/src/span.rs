//! Hierarchical spans: a thread-local stack of ids with RAII guards.
//!
//! Spans nest per thread: the guard returned by [`crate::span!`] pushes a
//! fresh id, records a `span_begin` event whose `parent` is the id below
//! it on the stack, and on drop pops the stack and records `span_end`
//! with the measured `duration_us`. Work dispatched to pool worker
//! threads starts a fresh stack on each worker — cross-thread parentage
//! is not tracked (events still carry the worker's thread id, so traces
//! remain attributable).

use crate::event::{Event, EventKind, Value};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Span ids are process-unique and never reused; 0 means "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Telemetry thread ids are small dense integers assigned on first use.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's telemetry id (assigned on first call, stable for
/// the thread's lifetime).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|c| {
        let id = c.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        c.set(id);
        id
    })
}

/// The innermost open span on the calling thread (0 = none).
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for one span. Construct via [`crate::span!`] or
/// [`SpanGuard::enter`].
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start_us: u64,
    active: bool,
}

impl SpanGuard {
    /// Opens a span when telemetry is enabled; otherwise returns an inert
    /// guard without touching the field closure (no allocation on the
    /// disabled path).
    pub fn enter(
        name: &'static str,
        fields: impl FnOnce() -> Vec<(String, Value)>,
    ) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                id: 0,
                name,
                start_us: 0,
                active: false,
            };
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = current_span();
        let start_us = crate::now_us();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        let mut event = Event {
            ts_us: start_us,
            kind: EventKind::SpanBegin,
            name: name.to_string(),
            span: id,
            parent,
            thread: thread_id(),
            fields: fields(),
        };
        // `Event::new` is bypassed so `span` is the new id, not the parent.
        event.ts_us = start_us;
        crate::emit(event);
        SpanGuard {
            id,
            name,
            start_us,
            active: true,
        }
    }

    /// The span's id (0 when telemetry was disabled at entry).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // Pop this span. Guards drop in LIFO order in well-formed code; if
        // an intervening guard leaked, unwind the stack down to our id so
        // the stack cannot grow without bound.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            while let Some(top) = stack.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let end_us = crate::now_us();
        let parent = current_span();
        crate::emit(Event {
            ts_us: end_us,
            kind: EventKind::SpanEnd,
            name: self.name.to_string(),
            span: self.id,
            parent,
            thread: thread_id(),
            fields: vec![(
                "duration_us".to_string(),
                Value::from(end_us.saturating_sub(self.start_us)),
            )],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::install_test_sink;

    #[test]
    fn spans_nest_and_balance() {
        let guard = install_test_sink();
        {
            let outer = SpanGuard::enter("outer", Vec::new);
            assert_eq!(current_span(), outer.id());
            {
                let inner = SpanGuard::enter("inner", Vec::new);
                assert_eq!(current_span(), inner.id());
            }
            assert_eq!(current_span(), outer.id());
        }
        assert_eq!(current_span(), 0);
        let events = guard.events();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        // The inner span's parent is the outer span.
        assert_eq!(begins[1].parent, begins[0].span);
        // Ends are LIFO: inner closes first.
        assert_eq!(ends[0].span, begins[1].span);
        assert_eq!(ends[1].span, begins[0].span);
        assert!(ends.iter().all(|e| e.field("duration_us").is_some()));
    }

    #[test]
    fn disabled_spans_are_inert() {
        // No sink installed in this scope: guard must not touch the stack.
        let _gate = crate::sink::test_lock();
        let depth_before = SPAN_STACK.with(|s| s.borrow().len());
        {
            let g = SpanGuard::enter("noop", || panic!("fields must stay lazy"));
            assert_eq!(g.id(), 0);
        }
        assert_eq!(SPAN_STACK.with(|s| s.borrow().len()), depth_before);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
    }
}
