//! A minimal JSON encoder/parser for the telemetry wire format.
//!
//! Deliberately tiny: the event schema only needs objects, arrays,
//! strings, finite numbers, booleans, and `null`. The build environment
//! has no crates.io access, so this replaces serde for the one format the
//! crate speaks. Encoding guarantees a lossless number round-trip: values
//! written without a decimal point or exponent parse back as integers,
//! everything else as floats.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`/`e` (fits an `i64`).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved via sorted map semantics.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Looks up a key of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value of `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer value of `Int` (floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value of `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value of `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes to compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => encode_f64(*f, out),
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a float: non-finite values become `null` (JSON has no NaN/inf);
/// finite values use the shortest round-trippable repr, which always
/// carries a `.` or `e` so the parser classifies them as floats.
pub fn encode_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else {
        // `{:?}` is the shortest representation that round-trips and
        // always includes ".0" for integral values.
        let _ = write!(out, "{f:?}");
    }
}

/// Writes a JSON string literal with escaping.
pub fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number {text:?}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| format!("bad number {text:?}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" 42 ").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"uote"}"#;
        let v = Json::parse(doc).unwrap();
        let re = Json::parse(&v.encode()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        // 1.0 encodes with a decimal point and parses back as a float.
        let f = Json::Float(1.0);
        assert_eq!(Json::parse(&f.encode()).unwrap(), f);
        let i = Json::Int(1);
        assert_eq!(Json::parse(&i.encode()).unwrap(), i);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\"").unwrap(),
            Json::Str("A".to_string())
        );
    }
}
