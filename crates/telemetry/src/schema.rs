//! The documented JSONL trace schema and its validator.
//!
//! Every line of a `GMORPH_TRACE` file is one JSON object with exactly
//! these top-level keys:
//!
//! | key      | type   | meaning                                         |
//! |----------|--------|-------------------------------------------------|
//! | `ts_us`  | int    | microseconds since telemetry install            |
//! | `kind`   | string | `span_begin` `span_end` `point` `counter` `histogram` `meta` |
//! | `name`   | string | dot-separated event name (non-empty)            |
//! | `span`   | int    | owning span id (0 = none; own id for span records) |
//! | `parent` | int    | parent span id (0 = root)                       |
//! | `thread` | int    | telemetry thread id (≥ 1)                       |
//! | `fields` | object | scalar payload (string/number/bool/null)        |
//!
//! Kind-specific required fields: `span_end` carries `duration_us`
//! (number); `counter` carries `value` (number); `histogram` carries
//! `count`, `sum`, `min`, `max`, `p50`, `p99` (numbers). Float fields
//! may be `null`, meaning NaN (JSON has no non-finite numbers).
//!
//! [`validate_file`] additionally checks structural invariants: spans
//! begin before they end, end in LIFO order per thread, and every
//! `span_end` matches an open `span_begin`.

use crate::event::{Event, EventKind};
use crate::json::Json;
use std::collections::BTreeMap;

/// Validates one JSONL line; returns its parsed event.
pub fn validate_line(line: &str) -> Result<Event, String> {
    let doc = Json::parse(line)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("line is not a JSON object".to_string());
    }
    // Unknown top-level keys are rejected: the schema is closed.
    if let Json::Obj(map) = &doc {
        const KEYS: [&str; 7] = ["ts_us", "kind", "name", "span", "parent", "thread", "fields"];
        for key in map.keys() {
            if !KEYS.contains(&key.as_str()) {
                return Err(format!("unknown top-level key {key:?}"));
            }
        }
        for key in KEYS {
            if !map.contains_key(key) {
                return Err(format!("missing top-level key {key:?}"));
            }
        }
    }
    let event = Event::from_json(line)?;
    if event.name.is_empty() {
        return Err("empty event name".to_string());
    }
    if event.thread == 0 {
        return Err("thread id must be >= 1".to_string());
    }
    let need_num = |field: &str| -> Result<(), String> {
        event
            .field(field)
            .and_then(|v| v.as_f64())
            .map(|_| ())
            .ok_or_else(|| format!("{} event missing numeric {field:?}", event.kind.as_str()))
    };
    match event.kind {
        EventKind::SpanBegin => {
            if event.span == 0 {
                return Err("span_begin with span id 0".to_string());
            }
        }
        EventKind::SpanEnd => {
            if event.span == 0 {
                return Err("span_end with span id 0".to_string());
            }
            need_num("duration_us")?;
        }
        EventKind::Counter => need_num("value")?,
        EventKind::Histogram => {
            for f in ["count", "sum", "min", "max", "p50", "p99"] {
                need_num(f)?;
            }
        }
        EventKind::Point | EventKind::Meta => {}
    }
    Ok(event)
}

/// Aggregate statistics of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total JSONL lines.
    pub lines: usize,
    /// Line counts per kind (wire names).
    pub by_kind: BTreeMap<String, usize>,
    /// Distinct event names seen.
    pub names: usize,
    /// Distinct threads seen.
    pub threads: usize,
    /// Spans opened (== spans closed when the trace is balanced).
    pub spans: usize,
}

/// Validates every line of a trace and the cross-line span invariants.
pub fn validate_events<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut names = std::collections::BTreeSet::new();
    let mut threads = std::collections::BTreeSet::new();
    // Per-thread stack of open span ids.
    let mut open: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        stats.lines += 1;
        *stats
            .by_kind
            .entry(event.kind.as_str().to_string())
            .or_insert(0) += 1;
        names.insert(event.name.clone());
        threads.insert(event.thread);
        match event.kind {
            EventKind::SpanBegin => {
                let stack = open.entry(event.thread).or_default();
                // The begin's parent must be the innermost open span on
                // its thread (0 when the stack is empty).
                let expected = stack.last().copied().unwrap_or(0);
                if event.parent != expected {
                    return Err(format!(
                        "line {}: span {} begins under parent {} but thread {}'s open span is {}",
                        i + 1,
                        event.span,
                        event.parent,
                        event.thread,
                        expected
                    ));
                }
                stack.push(event.span);
                stats.spans += 1;
            }
            EventKind::SpanEnd => {
                let stack = open.entry(event.thread).or_default();
                match stack.pop() {
                    Some(top) if top == event.span => {}
                    Some(top) => {
                        return Err(format!(
                            "line {}: span {} ends but thread {}'s innermost open span is {}",
                            i + 1,
                            event.span,
                            event.thread,
                            top
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {}: span {} ends with no open span on thread {}",
                            i + 1,
                            event.span,
                            event.thread
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    stats.names = names.len();
    stats.threads = threads.len();
    let dangling: usize = open.values().map(Vec::len).sum();
    if dangling > 0 {
        return Err(format!("{dangling} span(s) never closed"));
    }
    Ok(stats)
}

/// Validates a JSONL trace file on disk.
pub fn validate_file(path: impl AsRef<std::path::Path>) -> Result<TraceStats, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    validate_events(text.lines())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: &str, name: &str, span: u64, parent: u64, thread: u64, fields: &str) -> String {
        format!(
            r#"{{"ts_us":1,"kind":"{kind}","name":"{name}","span":{span},"parent":{parent},"thread":{thread},"fields":{{{fields}}}}}"#
        )
    }

    #[test]
    fn accepts_well_formed_traces() {
        let lines = [
            line("meta", "run", 0, 0, 1, r#""seed":0"#),
            line("span_begin", "outer", 5, 0, 1, ""),
            line("point", "tick", 5, 0, 1, r#""n":1"#),
            line("span_begin", "inner", 6, 5, 1, ""),
            line("span_end", "inner", 6, 5, 1, r#""duration_us":10"#),
            line("span_end", "outer", 5, 0, 1, r#""duration_us":30"#),
            line("counter", "c", 0, 0, 1, r#""value":3"#),
            line(
                "histogram",
                "h",
                0,
                0,
                1,
                r#""count":1,"sum":2.0,"min":2.0,"max":2.0,"p50":2.0,"p99":2.0"#,
            ),
        ];
        let stats = validate_events(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(stats.lines, 8);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.by_kind["span_begin"], 2);
    }

    #[test]
    fn rejects_schema_violations() {
        // Unknown key.
        assert!(validate_line(
            r#"{"ts_us":1,"kind":"point","name":"x","span":0,"parent":0,"thread":1,"fields":{},"extra":1}"#
        )
        .is_err());
        // Missing key.
        assert!(validate_line(
            r#"{"ts_us":1,"kind":"point","name":"x","span":0,"parent":0,"fields":{}}"#
        )
        .is_err());
        // Counter without value.
        assert!(validate_line(&line("counter", "c", 0, 0, 1, "")).is_err());
        // span_end without duration.
        assert!(validate_line(&line("span_end", "s", 3, 0, 1, "")).is_err());
        // Thread id 0.
        assert!(validate_line(&line("point", "x", 0, 0, 0, "")).is_err());
        // Empty name.
        assert!(validate_line(&line("point", "", 0, 0, 1, "")).is_err());
    }

    #[test]
    fn rejects_unbalanced_spans() {
        // End without begin.
        let bad = [line("span_end", "s", 3, 0, 1, r#""duration_us":1"#)];
        assert!(validate_events(bad.iter().map(String::as_str)).is_err());
        // Begin without end.
        let bad = [line("span_begin", "s", 3, 0, 1, "")];
        assert!(validate_events(bad.iter().map(String::as_str)).is_err());
        // Out-of-order ends on one thread.
        let bad = [
            line("span_begin", "a", 1, 0, 1, ""),
            line("span_begin", "b", 2, 1, 1, ""),
            line("span_end", "a", 1, 0, 1, r#""duration_us":1"#),
            line("span_end", "b", 2, 0, 1, r#""duration_us":1"#),
        ];
        assert!(validate_events(bad.iter().map(String::as_str)).is_err());
        // Interleaved threads are fine.
        let ok = [
            line("span_begin", "a", 1, 0, 1, ""),
            line("span_begin", "b", 2, 0, 2, ""),
            line("span_end", "a", 1, 0, 1, r#""duration_us":1"#),
            line("span_end", "b", 2, 0, 2, r#""duration_us":1"#),
        ];
        assert!(validate_events(ok.iter().map(String::as_str)).is_ok());
    }

    #[test]
    fn wrong_parent_is_rejected() {
        let bad = [
            line("span_begin", "a", 1, 0, 1, ""),
            line("span_begin", "b", 2, 0, 1, ""), // parent should be 1
        ];
        assert!(validate_events(bad.iter().map(String::as_str)).is_err());
    }
}
