//! Task descriptors.

use crate::metrics::Metric;

/// Training objective for a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Softmax cross-entropy over mutually exclusive classes.
    CrossEntropy,
    /// Per-class binary cross-entropy over multi-hot labels.
    BceMultiLabel,
}

/// Description of one prediction task in a benchmark.
///
/// The paper's optimization config names, for each task, "testing data and
/// scripts to evaluate task accuracy" (§3); a `TaskSpec` carries that
/// binding here: the output width, the score metric, and the training loss.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Human-readable task name, e.g. `"AgeNet"`.
    pub name: String,
    /// Number of output logits.
    pub classes: usize,
    /// Evaluation metric (higher is better, range `[0, 1]`-ish).
    pub metric: Metric,
    /// Training loss for teachers (distillation fine-tuning is ℓ1).
    pub loss: LossKind,
}

impl TaskSpec {
    /// Single-label classification task scored with accuracy.
    pub fn classification(name: &str, classes: usize) -> Self {
        TaskSpec {
            name: name.to_string(),
            classes,
            metric: Metric::Accuracy,
            loss: LossKind::CrossEntropy,
        }
    }

    /// Multi-label detection task scored with mean average precision.
    pub fn multilabel(name: &str, classes: usize) -> Self {
        TaskSpec {
            name: name.to_string(),
            classes,
            metric: Metric::MeanAp,
            loss: LossKind::BceMultiLabel,
        }
    }

    /// Binary classification scored with Matthews correlation (CoLA-style).
    pub fn matthews(name: &str) -> Self {
        TaskSpec {
            name: name.to_string(),
            classes: 2,
            metric: Metric::Matthews,
            loss: LossKind::CrossEntropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let c = TaskSpec::classification("AgeNet", 4);
        assert_eq!(c.classes, 4);
        assert_eq!(c.metric, Metric::Accuracy);
        assert_eq!(c.loss, LossKind::CrossEntropy);

        let m = TaskSpec::multilabel("ObjectNet", 6);
        assert_eq!(m.metric, Metric::MeanAp);
        assert_eq!(m.loss, LossKind::BceMultiLabel);

        let mt = TaskSpec::matthews("CoLANet");
        assert_eq!(mt.classes, 2);
        assert_eq!(mt.metric, Metric::Matthews);
    }
}
