//! Synthetic scene dataset (Lifelogging stand-in).
//!
//! Stands in for PASCAL VOC2007 (multi-label object presence, scored with
//! mAP) and SOS (salient object subitizing: predicting "the existence and
//! the number of salient objects"). Each scene contains a random subset of
//! object classes rendered as shifted class-specific patterns; the salient
//! count is the number of objects rendered above a saliency intensity
//! threshold, so the two tasks share the same low-level evidence.

use crate::dataset::{Labels, MultiTaskDataset};
use crate::render;
use crate::task::TaskSpec;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct ScenesConfig {
    /// Number of samples.
    pub samples: usize,
    /// Image side length.
    pub img: usize,
    /// Image channels.
    pub channels: usize,
    /// Number of object classes.
    pub object_classes: usize,
    /// Maximum salient count (labels are `0..=max_salient`).
    pub max_salient: usize,
    /// Per-object presence probability.
    pub presence_p: f32,
    /// Intensity above which an object counts as salient.
    pub salient_threshold: f32,
    /// Observation noise standard deviation.
    pub noise: f32,
}

impl Default for ScenesConfig {
    fn default() -> Self {
        ScenesConfig {
            samples: 512,
            img: 16,
            channels: 3,
            object_classes: 6,
            max_salient: 4,
            presence_p: 0.35,
            salient_threshold: 0.9,
            noise: 0.05,
        }
    }
}

/// Number of salient-count classes for a config.
pub fn salient_classes(cfg: &ScenesConfig) -> usize {
    cfg.max_salient + 1
}

/// Generates the scenes dataset with an ObjectNet (multi-label, mAP) task
/// and a SalientNet (count classification) task, in that order.
///
/// # Examples
///
/// ```
/// use gmorph_data::scenes::{generate, ScenesConfig};
/// use gmorph_tensor::rng::Rng;
///
/// let mut rng = Rng::new(0);
/// let cfg = ScenesConfig { samples: 4, ..Default::default() };
/// let ds = generate(&cfg, &mut rng).unwrap();
/// assert_eq!(ds.tasks[0].name, "ObjectNet");
/// assert_eq!(ds.tasks[1].name, "SalientNet");
/// ```
pub fn generate(cfg: &ScenesConfig, rng: &mut Rng) -> Result<MultiTaskDataset> {
    let mut basis_rng = rng.fork(0x5CEE5);
    let bases = render::random_bases(cfg.object_classes, cfg.channels, cfg.img, &mut basis_rng);

    let img_len = cfg.channels * cfg.img * cfg.img;
    let mut data = vec![0.0f32; cfg.samples * img_len];
    let mut presence = vec![0.0f32; cfg.samples * cfg.object_classes];
    let mut salient = Vec::with_capacity(cfg.samples);

    for s in 0..cfg.samples {
        let sample = &mut data[s * img_len..(s + 1) * img_len];
        let mut count = 0usize;
        let mut any = false;
        for cls in 0..cfg.object_classes {
            if !rng.coin(cfg.presence_p) {
                continue;
            }
            any = true;
            presence[s * cfg.object_classes + cls] = 1.0;
            let intensity = rng.uniform(0.5, 1.5);
            let dy = rng.below(cfg.img);
            let dx = rng.below(cfg.img);
            render::add_scaled_shifted(
                sample,
                &bases[cls],
                cfg.channels,
                cfg.img,
                dy,
                dx,
                intensity,
            );
            if intensity > cfg.salient_threshold {
                count += 1;
            }
        }
        // Guarantee at least one object so mAP has positives per batch.
        if !any {
            let cls = rng.below(cfg.object_classes);
            presence[s * cfg.object_classes + cls] = 1.0;
            let intensity = rng.uniform(0.5, 1.5);
            render::add_scaled_shifted(
                sample,
                &bases[cls],
                cfg.channels,
                cfg.img,
                0,
                0,
                intensity,
            );
            if intensity > cfg.salient_threshold {
                count += 1;
            }
        }
        for v in sample.iter_mut() {
            *v += cfg.noise * rng.normal();
        }
        salient.push(count.min(cfg.max_salient));
    }

    let inputs = Tensor::from_vec(&[cfg.samples, cfg.channels, cfg.img, cfg.img], data)?;
    let tasks = vec![
        TaskSpec::multilabel("ObjectNet", cfg.object_classes),
        TaskSpec::classification("SalientNet", salient_classes(cfg)),
    ];
    let labels = vec![
        Labels::MultiHot(Tensor::from_vec(
            &[cfg.samples, cfg.object_classes],
            presence,
        )?),
        Labels::Classes(salient),
    ];
    MultiTaskDataset::new(inputs, tasks, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let mut rng = Rng::new(0);
        let cfg = ScenesConfig {
            samples: 64,
            ..Default::default()
        };
        let ds = generate(&cfg, &mut rng).unwrap();
        assert_eq!(ds.inputs.dims(), &[64, 3, 16, 16]);
        match &ds.labels[1] {
            Labels::Classes(v) => assert!(v.iter().all(|&c| c <= cfg.max_salient)),
            _ => panic!(),
        }
        match &ds.labels[0] {
            Labels::MultiHot(m) => {
                // Every sample has at least one object.
                for i in 0..64 {
                    let row = &m.data()[i * 6..(i + 1) * 6];
                    assert!(row.iter().any(|&v| v > 0.5));
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn salient_count_correlates_with_presence() {
        let mut rng = Rng::new(1);
        let cfg = ScenesConfig {
            samples: 256,
            ..Default::default()
        };
        let ds = generate(&cfg, &mut rng).unwrap();
        let counts = match &ds.labels[1] {
            Labels::Classes(v) => v.clone(),
            _ => panic!(),
        };
        let presence = match &ds.labels[0] {
            Labels::MultiHot(m) => m.clone(),
            _ => panic!(),
        };
        // Salient count never exceeds total object count.
        for (i, &cnt) in counts.iter().enumerate().take(256) {
            let total: f32 = presence.data()[i * 6..(i + 1) * 6].iter().sum();
            assert!(cnt as f32 <= total);
        }
        // And counts are not all identical (the task is non-trivial).
        assert!(counts.iter().any(|&c| c != counts[0]));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenesConfig {
            samples: 8,
            ..Default::default()
        };
        let a = generate(&cfg, &mut Rng::new(2)).unwrap();
        let b = generate(&cfg, &mut Rng::new(2)).unwrap();
        assert_eq!(a.inputs.data(), b.inputs.data());
    }
}
