//! Shared rendering utilities for the synthetic vision generators.

use gmorph_tensor::interp::{resize2d_forward, InterpMode};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::Tensor;

/// Generates `n` fixed low-frequency spatial bases of shape `[C, S, S]`.
///
/// Each basis is a random 4×4 field bilinearly upsampled to `S`×`S`, which
/// gives smooth, spatially coherent patterns that small convolutions can
/// learn to detect — unlike white noise.
pub fn random_bases(n: usize, channels: usize, img: usize, rng: &mut Rng) -> Vec<Vec<f32>> {
    let coarse_side = 4.min(img);
    (0..n)
        .map(|_| {
            let coarse = Tensor::randn(&[1, channels, coarse_side, coarse_side], 1.0, rng);
            resize2d_forward(&coarse, img, img, InterpMode::Bilinear)
                .expect("basis upsample cannot fail for nonzero sizes")
                .into_data()
        })
        .collect()
}

/// Adds `scale * basis` into a sample buffer.
pub fn add_scaled(sample: &mut [f32], basis: &[f32], scale: f32) {
    debug_assert_eq!(sample.len(), basis.len());
    for (s, &b) in sample.iter_mut().zip(basis.iter()) {
        *s += scale * b;
    }
}

/// Adds `scale * basis` into a sample, cyclically shifted by `(dy, dx)`.
///
/// Used by the scenes generator to place object patterns at varying
/// positions.
pub fn add_scaled_shifted(
    sample: &mut [f32],
    basis: &[f32],
    channels: usize,
    img: usize,
    dy: usize,
    dx: usize,
    scale: f32,
) {
    for c in 0..channels {
        let plane = c * img * img;
        for y in 0..img {
            let sy = (y + dy) % img;
            for x in 0..img {
                let sx = (x + dx) % img;
                sample[plane + sy * img + sx] += scale * basis[plane + y * img + x];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_have_expected_size_and_determinism() {
        let mut a = Rng::new(0);
        let mut b = Rng::new(0);
        let ba = random_bases(3, 2, 8, &mut a);
        let bb = random_bases(3, 2, 8, &mut b);
        assert_eq!(ba.len(), 3);
        assert_eq!(ba[0].len(), 2 * 8 * 8);
        assert_eq!(ba, bb);
    }

    #[test]
    fn bases_are_smooth() {
        // Neighbouring pixels of an upsampled 4x4 field correlate strongly.
        let mut rng = Rng::new(1);
        let b = &random_bases(1, 1, 16, &mut rng)[0];
        let mut diff = 0.0f32;
        let mut mag = 0.0f32;
        for y in 0..16 {
            for x in 0..15 {
                diff += (b[y * 16 + x + 1] - b[y * 16 + x]).abs();
                mag += b[y * 16 + x].abs();
            }
        }
        assert!(diff < mag, "diff {diff} mag {mag}");
    }

    #[test]
    fn shifted_add_wraps() {
        let basis = vec![1.0, 0.0, 0.0, 0.0]; // 1x2x2, hot at (0,0).
        let mut sample = vec![0.0f32; 4];
        add_scaled_shifted(&mut sample, &basis, 1, 2, 1, 1, 2.0);
        assert_eq!(sample, vec![0.0, 0.0, 0.0, 2.0]);
    }
}
