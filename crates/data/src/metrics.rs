//! Task-quality metrics: accuracy, mean average precision, Matthews
//! correlation coefficient.
//!
//! These are the three scores the paper reports (Appendix A): accuracy for
//! B1-B3 and SST-2, mAP for B4-B6's ObjectNet, Matthews correlation for
//! CoLA.

use crate::dataset::Labels;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Which score a task is evaluated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fraction of correctly classified samples.
    Accuracy,
    /// Mean average precision over classes (multi-label detection).
    MeanAp,
    /// Matthews correlation coefficient rescaled to `[0, 1]` via
    /// `(mcc + 1) / 2` so all metrics share a "higher is better in \[0,1\]"
    /// convention for threshold math.
    Matthews,
}

/// Classification accuracy from logits `[N, C]` and integer labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "accuracy",
            msg: format!("{} preds vs {} labels", preds.len(), labels.len()),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels.iter()).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Average precision for one class from (score, is_positive) pairs.
///
/// Uses the "sum of precision at each positive" formulation.
pub fn average_precision(scores: &[f32], positives: &[bool]) -> f32 {
    let total_pos = positives.iter().filter(|&&p| p).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut hits = 0usize;
    let mut ap = 0.0f32;
    for (rank, &i) in order.iter().enumerate() {
        if positives[i] {
            hits += 1;
            ap += hits as f32 / (rank + 1) as f32;
        }
    }
    ap / total_pos as f32
}

/// Mean average precision from logits `[N, C]` and multi-hot targets
/// `[N, C]`.
pub fn mean_ap(logits: &Tensor, targets: &Tensor) -> Result<f32> {
    if logits.dims() != targets.dims() || logits.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op: "mean_ap",
            lhs: logits.shape().to_string(),
            rhs: targets.shape().to_string(),
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut sum = 0.0f32;
    let mut counted = 0usize;
    for cls in 0..c {
        let scores: Vec<f32> = (0..n).map(|i| logits.data()[i * c + cls]).collect();
        let pos: Vec<bool> = (0..n).map(|i| targets.data()[i * c + cls] > 0.5).collect();
        if pos.iter().any(|&p| p) {
            sum += average_precision(&scores, &pos);
            counted += 1;
        }
    }
    if counted == 0 {
        return Ok(0.0);
    }
    Ok(sum / counted as f32)
}

/// Matthews correlation coefficient for binary predictions, rescaled to
/// `[0, 1]`.
pub fn matthews(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(TensorError::InvalidArgument {
            op: "matthews",
            msg: format!("{} preds vs {} labels", preds.len(), labels.len()),
        });
    }
    let (mut tp, mut tn, mut fp, mut fn_) = (0f64, 0f64, 0f64, 0f64);
    for (&p, &l) in preds.iter().zip(labels.iter()) {
        match (p, l) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fn_ += 1.0,
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "matthews",
                    msg: format!("non-binary class {p}/{l}"),
                })
            }
        }
    }
    let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
    let mcc = if denom == 0.0 {
        0.0
    } else {
        ((tp * tn - fp * fn_) / denom) as f32
    };
    Ok((mcc + 1.0) / 2.0)
}

/// Scores logits against labels with the given metric.
pub fn score(metric: Metric, logits: &Tensor, labels: &Labels) -> Result<f32> {
    match (metric, labels) {
        (Metric::Accuracy, Labels::Classes(ls)) => accuracy(logits, ls),
        (Metric::Matthews, Labels::Classes(ls)) => matthews(logits, ls),
        (Metric::MeanAp, Labels::MultiHot(t)) => mean_ap(logits, t),
        _ => Err(TensorError::InvalidArgument {
            op: "score",
            msg: "metric/label kind mismatch".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accuracy_basics() {
        let logits =
            Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0, 1]).unwrap(), 0.0);
        assert!((accuracy(&logits, &[0, 0, 0]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let pos = vec![true, true, false, false];
        assert!((average_precision(&scores, &pos) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ap_worst_ranking() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let pos = vec![false, false, true, true];
        // Precisions at the two positives: 1/3 and 2/4.
        let expect = (1.0 / 3.0 + 0.5) / 2.0;
        assert!((average_precision(&scores, &pos) - expect).abs() < 1e-6);
    }

    #[test]
    fn ap_no_positives_is_zero() {
        assert_eq!(average_precision(&[0.5, 0.4], &[false, false]), 0.0);
    }

    #[test]
    fn mean_ap_perfect() {
        let logits =
            Tensor::from_vec(&[2, 2], vec![5.0, -5.0, -5.0, 5.0]).unwrap();
        let targets = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((mean_ap(&logits, &targets).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn matthews_perfect_and_inverted() {
        let perfect =
            Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 1., 0., 0., 1.]).unwrap();
        let labels = [0usize, 1, 0, 1];
        assert!((matthews(&perfect, &labels).unwrap() - 1.0).abs() < 1e-6);
        let inverted =
            Tensor::from_vec(&[4, 2], vec![0., 1., 1., 0., 0., 1., 1., 0.]).unwrap();
        assert!(matthews(&inverted, &labels).unwrap() < 1e-6);
    }

    #[test]
    fn matthews_random_is_half() {
        // All-same predictions give mcc 0 -> rescaled 0.5.
        let logits = Tensor::from_vec(&[2, 2], vec![1., 0., 1., 0.]).unwrap();
        assert!((matthews(&logits, &[0, 1]).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn matthews_rejects_multiclass() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 1.0]).unwrap();
        assert!(matthews(&logits, &[2]).is_err());
    }

    #[test]
    fn score_dispatch() {
        let logits = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]).unwrap();
        let acc = score(Metric::Accuracy, &logits, &Labels::Classes(vec![0])).unwrap();
        assert_eq!(acc, 1.0);
        // Mismatched kinds error.
        assert!(score(Metric::MeanAp, &logits, &Labels::Classes(vec![0])).is_err());
    }

    proptest! {
        #[test]
        fn metrics_are_bounded(
            vals in proptest::collection::vec(-5.0f32..5.0, 8..24),
        ) {
            let n = vals.len() / 2;
            let logits = Tensor::from_vec(&[n, 2], vals[..n * 2].to_vec()).unwrap();
            let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let acc = accuracy(&logits, &labels).unwrap();
            prop_assert!((0.0..=1.0).contains(&acc));
            let m = matthews(&logits, &labels).unwrap();
            prop_assert!((0.0..=1.0).contains(&m));
            let targets = Tensor::from_vec(
                &[n, 2],
                (0..n * 2).map(|i| (i % 3 == 0) as u8 as f32).collect(),
            ).unwrap();
            let map = mean_ap(&logits, &targets).unwrap();
            prop_assert!((0.0..=1.0).contains(&map));
        }
    }
}
