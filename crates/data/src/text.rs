//! Synthetic text dataset (General Language Understanding stand-in).
//!
//! Stands in for CoLA (grammatical acceptability, Matthews correlation) and
//! SST-2 (sentiment, accuracy). Sentences are token sequences over a small
//! synthetic vocabulary where every word type carries a *syntactic
//! category* and a *sentiment valence*:
//!
//! - the CoLA task labels a sentence grammatical when its categories follow
//!   a simple alternation grammar (Det-Noun-Verb cycles); corruption swaps
//!   break the pattern,
//! - the SST task labels the sign of the summed valence.
//!
//! Both tasks read the same token stream, so their early representations
//! (token identity features) are shareable — mirroring the B7 benchmark
//! where BERTLarge and BERTBase layers end up shared.

use crate::dataset::{Labels, MultiTaskDataset};
use crate::task::TaskSpec;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct TextConfig {
    /// Number of samples.
    pub samples: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Vocabulary size (must be ≥ 12).
    pub vocab: usize,
    /// Probability that a sentence is corrupted (ungrammatical).
    pub corrupt_p: f32,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            samples: 512,
            seq_len: 12,
            vocab: 48,
            corrupt_p: 0.5,
        }
    }
}

/// Syntactic category of a token id.
fn category(id: usize) -> usize {
    id % 3 // 0 = determiner-ish, 1 = noun-ish, 2 = verb-ish.
}

/// Sentiment valence of a token id: -1, 0, +1 in a fixed pattern.
fn valence(id: usize) -> i32 {
    match (id / 3) % 3 {
        0 => -1,
        1 => 0,
        _ => 1,
    }
}

/// Generates the text dataset with a CoLANet (Matthews) task and an SSTNet
/// (accuracy) task, in that order.
pub fn generate(cfg: &TextConfig, rng: &mut Rng) -> Result<MultiTaskDataset> {
    if cfg.vocab < 12 {
        return Err(gmorph_tensor::TensorError::InvalidArgument {
            op: "text::generate",
            msg: format!("vocab {} too small (need ≥ 12)", cfg.vocab),
        });
    }
    let mut data = vec![0.0f32; cfg.samples * cfg.seq_len];
    let mut cola = Vec::with_capacity(cfg.samples);
    let mut sst = Vec::with_capacity(cfg.samples);

    for s in 0..cfg.samples {
        // Build a grammatical sentence: categories cycle 0,1,2,0,1,2,...
        let mut tokens: Vec<usize> = (0..cfg.seq_len)
            .map(|p| {
                let want_cat = p % 3;
                // Sample a token with the desired category.
                loop {
                    let id = rng.below(cfg.vocab);
                    if category(id) == want_cat {
                        return id;
                    }
                }
            })
            .collect();
        let corrupted = rng.coin(cfg.corrupt_p);
        if corrupted {
            // Break the grammar by re-rolling a few positions to wrong
            // categories.
            let swaps = 2 + rng.below(cfg.seq_len / 3);
            for _ in 0..swaps {
                let p = rng.below(cfg.seq_len);
                let want_cat = p % 3;
                loop {
                    let id = rng.below(cfg.vocab);
                    if category(id) != want_cat {
                        tokens[p] = id;
                        break;
                    }
                }
            }
        }
        let val: i32 = tokens.iter().map(|&t| valence(t)).sum();
        for (p, &t) in tokens.iter().enumerate() {
            data[s * cfg.seq_len + p] = t as f32;
        }
        cola.push(usize::from(!corrupted));
        sst.push(usize::from(val > 0));
    }

    let inputs = Tensor::from_vec(&[cfg.samples, cfg.seq_len], data)?;
    let tasks = vec![
        TaskSpec::matthews("CoLANet"),
        TaskSpec::classification("SSTNet", 2),
    ];
    let labels = vec![Labels::Classes(cola), Labels::Classes(sst)];
    MultiTaskDataset::new(inputs, tasks, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_token_ranges() {
        let mut rng = Rng::new(0);
        let cfg = TextConfig {
            samples: 32,
            ..Default::default()
        };
        let ds = generate(&cfg, &mut rng).unwrap();
        assert_eq!(ds.inputs.dims(), &[32, 12]);
        for &v in ds.inputs.data() {
            assert!(v >= 0.0 && (v as usize) < cfg.vocab);
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn grammatical_sentences_follow_pattern() {
        let mut rng = Rng::new(1);
        let cfg = TextConfig {
            samples: 64,
            corrupt_p: 0.0,
            ..Default::default()
        };
        let ds = generate(&cfg, &mut rng).unwrap();
        let labels = match &ds.labels[0] {
            Labels::Classes(v) => v.clone(),
            _ => panic!(),
        };
        assert!(labels.iter().all(|&l| l == 1));
        for s in 0..64 {
            for p in 0..cfg.seq_len {
                let id = ds.inputs.data()[s * cfg.seq_len + p] as usize;
                assert_eq!(category(id), p % 3);
            }
        }
    }

    #[test]
    fn rejects_tiny_vocab() {
        let cfg = TextConfig {
            vocab: 6,
            ..Default::default()
        };
        assert!(generate(&cfg, &mut Rng::new(0)).is_err());
    }

    #[test]
    fn both_labels_have_both_classes() {
        let mut rng = Rng::new(2);
        let cfg = TextConfig {
            samples: 128,
            ..Default::default()
        };
        let ds = generate(&cfg, &mut rng).unwrap();
        for labels in &ds.labels {
            let v = match labels {
                Labels::Classes(v) => v,
                _ => panic!(),
            };
            assert!(v.contains(&0) && v.contains(&1));
        }
    }
}
