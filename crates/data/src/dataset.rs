//! Multi-task dataset container, splits, and batching.

use crate::task::TaskSpec;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Labels for one task across all samples.
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// One class index per sample.
    Classes(Vec<usize>),
    /// A `[N, C]` multi-hot tensor.
    MultiHot(Tensor),
}

impl Labels {
    /// Number of labelled samples.
    pub fn len(&self) -> usize {
        match self {
            Labels::Classes(v) => v.len(),
            Labels::MultiHot(t) => t.dims()[0],
        }
    }

    /// True when no samples are labelled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Selects a subset of samples by index.
    pub fn select(&self, indices: &[usize]) -> Result<Labels> {
        match self {
            Labels::Classes(v) => {
                let mut out = Vec::with_capacity(indices.len());
                for &i in indices {
                    let l = *v.get(i).ok_or(TensorError::OutOfBounds {
                        op: "Labels::select",
                        index: i,
                        bound: v.len(),
                    })?;
                    out.push(l);
                }
                Ok(Labels::Classes(out))
            }
            Labels::MultiHot(t) => Ok(Labels::MultiHot(t.select_rows(indices)?)),
        }
    }
}

/// A dataset with one shared input stream and per-task labels.
///
/// This mirrors the paper's setting: "multiple tasks operate on the same
/// data stream" (§1). All tasks are labelled on all samples here (the
/// generators produce them jointly); GMorph itself never uses the labels
/// for fine-tuning — only for *evaluating* task accuracy — which is exactly
/// the paper's distillation setup.
#[derive(Debug, Clone)]
pub struct MultiTaskDataset {
    /// Inputs, `[N, ...]`.
    pub inputs: Tensor,
    /// Task descriptors.
    pub tasks: Vec<TaskSpec>,
    /// Per-task labels, each of length `N`.
    pub labels: Vec<Labels>,
}

/// A train/test split of a [`MultiTaskDataset`].
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: MultiTaskDataset,
    /// Held-out test portion.
    pub test: MultiTaskDataset,
}

impl MultiTaskDataset {
    /// Validates internal consistency and constructs the dataset.
    pub fn new(inputs: Tensor, tasks: Vec<TaskSpec>, labels: Vec<Labels>) -> Result<Self> {
        let n = inputs.dims().first().copied().unwrap_or(0);
        if tasks.len() != labels.len() {
            return Err(TensorError::InvalidArgument {
                op: "MultiTaskDataset::new",
                msg: format!("{} tasks but {} label sets", tasks.len(), labels.len()),
            });
        }
        for (t, l) in tasks.iter().zip(labels.iter()) {
            if l.len() != n {
                return Err(TensorError::InvalidArgument {
                    op: "MultiTaskDataset::new",
                    msg: format!("task {} has {} labels for {} samples", t.name, l.len(), n),
                });
            }
            if let Labels::MultiHot(m) = l {
                if m.dims()[1] != t.classes {
                    return Err(TensorError::InvalidArgument {
                        op: "MultiTaskDataset::new",
                        msg: format!("task {} label width mismatch", t.name),
                    });
                }
            }
        }
        Ok(MultiTaskDataset {
            inputs,
            tasks,
            labels,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.dims().first().copied().unwrap_or(0)
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts a subset by sample indices.
    pub fn subset(&self, indices: &[usize]) -> Result<MultiTaskDataset> {
        let inputs = self.inputs.select_rows(indices)?;
        let mut labels = Vec::with_capacity(self.labels.len());
        for l in &self.labels {
            labels.push(l.select(indices)?);
        }
        MultiTaskDataset::new(inputs, self.tasks.clone(), labels)
    }

    /// Splits into train/test with the given training fraction, shuffling
    /// with the provided generator.
    pub fn split(&self, train_frac: f32, rng: &mut Rng) -> Result<Split> {
        let n = self.len();
        let n_train = ((n as f32) * train_frac).round() as usize;
        let mut ix: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut ix);
        let (a, b) = ix.split_at(n_train.min(n));
        Ok(Split {
            train: self.subset(a)?,
            test: self.subset(b)?,
        })
    }

    /// Produces shuffled batch index lists covering all samples.
    ///
    /// The last batch may be smaller. Use [`MultiTaskDataset::subset`] or
    /// `inputs.select_rows` to materialize each batch.
    pub fn batch_indices(&self, batch: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
        let mut ix: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut ix);
        ix.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn toy() -> MultiTaskDataset {
        let inputs = Tensor::from_vec(&[4, 2], (0..8).map(|x| x as f32).collect()).unwrap();
        let tasks = vec![
            TaskSpec::classification("a", 2),
            TaskSpec::multilabel("b", 3),
        ];
        let labels = vec![
            Labels::Classes(vec![0, 1, 0, 1]),
            Labels::MultiHot(Tensor::zeros(&[4, 3])),
        ];
        MultiTaskDataset::new(inputs, tasks, labels).unwrap()
    }

    #[test]
    fn construction_validates() {
        let d = toy();
        assert_eq!(d.len(), 4);
        // Label length mismatch rejected.
        let bad = MultiTaskDataset::new(
            Tensor::zeros(&[4, 2]),
            vec![TaskSpec::classification("a", 2)],
            vec![Labels::Classes(vec![0, 1])],
        );
        assert!(bad.is_err());
        // Multi-hot width mismatch rejected.
        let bad = MultiTaskDataset::new(
            Tensor::zeros(&[2, 2]),
            vec![TaskSpec::multilabel("b", 3)],
            vec![Labels::MultiHot(Tensor::zeros(&[2, 4]))],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn subset_selects_rows_and_labels() {
        let d = toy();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.inputs.data(), &[4.0, 5.0, 0.0, 1.0]);
        match &s.labels[0] {
            Labels::Classes(v) => assert_eq!(v, &vec![0, 0]),
            _ => panic!(),
        }
        assert!(d.subset(&[9]).is_err());
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = Rng::new(0);
        let s = d.split(0.5, &mut rng).unwrap();
        assert_eq!(s.train.len() + s.test.len(), 4);
        assert_eq!(s.train.len(), 2);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let mut rng = Rng::new(1);
        let batches = d.batch_indices(3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn labels_len_and_select() {
        let l = Labels::Classes(vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        let m = Labels::MultiHot(Tensor::zeros(&[5, 2]));
        assert_eq!(m.len(), 5);
        assert_eq!(m.select(&[0, 4]).unwrap().len(), 2);
    }
}
