//! Synthetic multi-task datasets and metrics for the GMorph reproduction.
//!
//! The paper evaluates on UTKFace, FER2013, Adience, PASCAL VOC2007, SOS,
//! CoLA, and SST-2 — none of which are available offline. This crate
//! substitutes *shared-latent factor models*: each sample is generated from
//! a latent vector, tasks on the same input stream derive their labels from
//! overlapping subsets of the latent factors, and the factors are rendered
//! into the observable input through fixed random bases. That reproduces
//! the property GMorph exploits — tasks over one stream share learnable
//! low-level features while keeping task-specific high-level structure —
//! without the original data.
//!
//! Three generators mirror the paper's three applications (Table 1):
//!
//! - [`faces`]: age / gender / ethnicity / emotion over rendered "face"
//!   images (Vision Support; UTKFace, FER2013, Adience),
//! - [`scenes`]: multi-label object presence (scored with mAP) and salient
//!   object counting (Lifelogging; VOC2007, SOS),
//! - [`text`]: grammaticality (Matthews correlation) and sentiment over
//!   synthetic token streams (General Language Understanding; CoLA, SST-2).

pub mod dataset;
pub mod faces;
pub mod metrics;
pub mod render;
pub mod scenes;
pub mod task;
pub mod text;

pub use dataset::{Labels, MultiTaskDataset, Split};
pub use metrics::Metric;
pub use task::{LossKind, TaskSpec};
