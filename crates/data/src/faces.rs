//! Synthetic face-attribute dataset (Vision Support stand-in).
//!
//! Stands in for UTKFace (age/gender/ethnicity), FER2013 (emotion), and
//! Adience (age/gender). Each sample is generated from a latent vector
//! `z = (identity, age, gender, ethnicity, emotion, noise)`; the latent is
//! rendered into a `[C, S, S]` image through fixed low-frequency random
//! bases shared by *all* factors, so the tasks' early visual features
//! genuinely overlap — the property model fusion exploits.

use crate::dataset::{Labels, MultiTaskDataset};
use crate::render;
use crate::task::TaskSpec;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct FacesConfig {
    /// Number of samples.
    pub samples: usize,
    /// Image side length.
    pub img: usize,
    /// Image channels.
    pub channels: usize,
    /// Age classes.
    pub age_classes: usize,
    /// Ethnicity classes.
    pub ethnicity_classes: usize,
    /// Emotion classes.
    pub emotion_classes: usize,
    /// Observation noise standard deviation.
    pub noise: f32,
}

impl Default for FacesConfig {
    fn default() -> Self {
        FacesConfig {
            samples: 512,
            img: 16,
            channels: 3,
            age_classes: 4,
            ethnicity_classes: 3,
            emotion_classes: 4,
            noise: 0.05,
        }
    }
}

/// Which face tasks to include, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceTask {
    /// Age bucket classification.
    Age,
    /// Binary gender classification.
    Gender,
    /// Ethnicity classification.
    Ethnicity,
    /// Emotion classification.
    Emotion,
}

/// Generates a face dataset with the requested tasks.
///
/// # Examples
///
/// ```
/// use gmorph_data::faces::{generate, FaceTask, FacesConfig};
/// use gmorph_tensor::rng::Rng;
///
/// let mut rng = Rng::new(0);
/// let cfg = FacesConfig { samples: 8, ..Default::default() };
/// let ds = generate(&cfg, &[FaceTask::Age, FaceTask::Gender], &mut rng).unwrap();
/// assert_eq!(ds.len(), 8);
/// assert_eq!(ds.tasks.len(), 2);
/// ```
pub fn generate(
    cfg: &FacesConfig,
    tasks: &[FaceTask],
    rng: &mut Rng,
) -> Result<MultiTaskDataset> {
    // One fixed rendering basis per latent factor, shared across samples.
    // Factors: 2 identity dims, age, gender, ethnicity (one basis per
    // class), emotion (one basis per class).
    let mut basis_rng = rng.fork(0xFACE);
    let n_bases = 2 + 1 + 1 + cfg.ethnicity_classes + cfg.emotion_classes;
    let bases = render::random_bases(n_bases, cfg.channels, cfg.img, &mut basis_rng);

    let img_len = cfg.channels * cfg.img * cfg.img;
    let mut data = vec![0.0f32; cfg.samples * img_len];
    let mut age = Vec::with_capacity(cfg.samples);
    let mut gender = Vec::with_capacity(cfg.samples);
    let mut ethnicity = Vec::with_capacity(cfg.samples);
    let mut emotion = Vec::with_capacity(cfg.samples);

    for s in 0..cfg.samples {
        let id0 = rng.normal();
        let id1 = rng.normal();
        let age_f = rng.uniform(0.0, 1.0);
        let gender_c = rng.below(2);
        let eth_c = rng.below(cfg.ethnicity_classes);
        let emo_c = rng.below(cfg.emotion_classes);

        let sample = &mut data[s * img_len..(s + 1) * img_len];
        let mut bi = 0usize;
        render::add_scaled(sample, &bases[bi], 0.5 * id0);
        bi += 1;
        render::add_scaled(sample, &bases[bi], 0.5 * id1);
        bi += 1;
        render::add_scaled(sample, &bases[bi], 2.0 * (age_f - 0.5));
        bi += 1;
        render::add_scaled(sample, &bases[bi], if gender_c == 1 { 1.0 } else { -1.0 });
        bi += 1;
        render::add_scaled(sample, &bases[bi + eth_c], 1.0);
        bi += cfg.ethnicity_classes;
        render::add_scaled(sample, &bases[bi + emo_c], 1.0);
        for v in sample.iter_mut() {
            *v += cfg.noise * rng.normal();
        }

        age.push(((age_f * cfg.age_classes as f32) as usize).min(cfg.age_classes - 1));
        gender.push(gender_c);
        ethnicity.push(eth_c);
        emotion.push(emo_c);
    }

    let inputs = Tensor::from_vec(
        &[cfg.samples, cfg.channels, cfg.img, cfg.img],
        data,
    )?;
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for t in tasks {
        match t {
            FaceTask::Age => {
                specs.push(TaskSpec::classification("AgeNet", cfg.age_classes));
                labels.push(Labels::Classes(age.clone()));
            }
            FaceTask::Gender => {
                specs.push(TaskSpec::classification("GenderNet", 2));
                labels.push(Labels::Classes(gender.clone()));
            }
            FaceTask::Ethnicity => {
                specs.push(TaskSpec::classification(
                    "EthnicityNet",
                    cfg.ethnicity_classes,
                ));
                labels.push(Labels::Classes(ethnicity.clone()));
            }
            FaceTask::Emotion => {
                specs.push(TaskSpec::classification("EmotionNet", cfg.emotion_classes));
                labels.push(Labels::Classes(emotion.clone()));
            }
        }
    }
    MultiTaskDataset::new(inputs, specs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_ranges() {
        let mut rng = Rng::new(0);
        let cfg = FacesConfig {
            samples: 32,
            ..Default::default()
        };
        let ds = generate(
            &cfg,
            &[FaceTask::Age, FaceTask::Gender, FaceTask::Ethnicity],
            &mut rng,
        )
        .unwrap();
        assert_eq!(ds.inputs.dims(), &[32, 3, 16, 16]);
        match &ds.labels[0] {
            Labels::Classes(v) => assert!(v.iter().all(|&c| c < cfg.age_classes)),
            _ => panic!(),
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FacesConfig {
            samples: 8,
            ..Default::default()
        };
        let a = generate(&cfg, &[FaceTask::Age], &mut Rng::new(5)).unwrap();
        let b = generate(&cfg, &[FaceTask::Age], &mut Rng::new(5)).unwrap();
        assert_eq!(a.inputs.data(), b.inputs.data());
        assert_eq!(a.labels[0], b.labels[0]);
    }

    #[test]
    fn labels_are_visually_separable() {
        // A nearest-centroid classifier on raw pixels should beat chance on
        // gender; otherwise the tasks would be unlearnable.
        let mut rng = Rng::new(1);
        let cfg = FacesConfig {
            samples: 200,
            noise: 0.02,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender], &mut rng).unwrap();
        let labels = match &ds.labels[0] {
            Labels::Classes(v) => v.clone(),
            _ => panic!(),
        };
        let d = ds.inputs.numel() / ds.len();
        let mut centroids = vec![vec![0.0f32; d]; 2];
        let mut counts = [0usize; 2];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            for (j, cv) in centroids[l].iter_mut().enumerate() {
                *cv += ds.inputs.data()[i * d + j];
            }
        }
        for (c, cnt) in centroids.iter_mut().zip(counts.iter()) {
            for v in c.iter_mut() {
                *v /= (*cnt).max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for (i, &l) in labels.iter().enumerate() {
            let x = &ds.inputs.data()[i * d..(i + 1) * d];
            let dist = |c: &Vec<f32>| -> f32 {
                x.iter().zip(c.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let pred = if dist(&centroids[0]) < dist(&centroids[1]) { 0 } else { 1 };
            if pred == l {
                correct += 1;
            }
        }
        let acc = correct as f32 / labels.len() as f32;
        assert!(acc > 0.8, "centroid accuracy {acc}");
    }
}
